//! Measurement pipeline: per-tick collection and the final report.

use agile_core::RoundStats;
use cluster::{Cluster, DemandOutcome};
use obs::{Json, JsonError, MetricsSnapshot};

use crate::events::EventRecord;
use simcore::{SimDuration, SimTime, TimeSeries, Welford};

/// Demand below this many cores counts as zero when deciding whether a
/// tick had a violation (absorbs floating-point dust).
const VIOLATION_EPS_CORES: f64 = 1e-6;

/// Fault-and-churn tallies the engine hands to
/// [`MetricsCollector::finalize`] in one bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FaultCounters {
    /// Power transitions that failed (fault injection).
    pub transition_failures: u64,
    /// Arriving VMs deferred at least one round for capacity.
    pub placement_retries: u64,
    /// Live migrations that aborted mid-flight (fault injection).
    pub migration_failures: u64,
    /// Deferred arrivals that ran out of horizon and were rejected.
    pub rejected_admissions: u64,
    /// Power transitions that hung (stuck intervals, fault injection).
    pub hung_transitions: u64,
}

/// Collects metrics during a run; folded into a [`SimReport`] at the end.
#[derive(Debug, Clone)]
pub(crate) struct MetricsCollector {
    tick_dt: SimDuration,
    power_series: TimeSeries,
    hosts_on_series: TimeSeries,
    unserved_series: TimeSeries,
    offered_core_secs: f64,
    served_core_secs: f64,
    unserved_core_secs: f64,
    offered_interactive_core_secs: f64,
    offered_batch_core_secs: f64,
    unserved_interactive_core_secs: f64,
    unserved_batch_core_secs: f64,
    violation_ticks: u64,
    ticks: u64,
    util_on: Welford,
    action_failures: u64,
    latency_weighted_sum: f64,
    latency_weight: f64,
    peak_latency_factor: f64,
}

impl MetricsCollector {
    pub fn new(tick_dt: SimDuration) -> Self {
        MetricsCollector {
            tick_dt,
            power_series: TimeSeries::new(),
            hosts_on_series: TimeSeries::new(),
            unserved_series: TimeSeries::new(),
            offered_core_secs: 0.0,
            served_core_secs: 0.0,
            unserved_core_secs: 0.0,
            offered_interactive_core_secs: 0.0,
            offered_batch_core_secs: 0.0,
            unserved_interactive_core_secs: 0.0,
            unserved_batch_core_secs: 0.0,
            violation_ticks: 0,
            ticks: 0,
            util_on: Welford::new(),
            action_failures: 0,
            latency_weighted_sum: 0.0,
            latency_weight: 0.0,
            peak_latency_factor: 1.0,
        }
    }

    /// Records one demand-weighted response-time-factor sample (an M/M/1
    /// style `1/(1-rho)` stretch; rho capped at 0.98). Both the simulated
    /// and the analytic (oracle) paths feed this.
    pub fn record_latency_sample(&mut self, rho: f64, demand_weight: f64) {
        if demand_weight <= 0.0 {
            return;
        }
        let factor = 1.0 / (1.0 - rho.clamp(0.0, 0.98));
        self.latency_weighted_sum += factor * demand_weight;
        self.latency_weight += demand_weight;
        self.peak_latency_factor = self.peak_latency_factor.max(factor);
    }

    /// Records one demand tick.
    pub fn record_tick(&mut self, now: SimTime, outcome: &DemandOutcome, cluster: &Cluster) {
        let dt = self.tick_dt.as_secs_f64();
        self.offered_core_secs += outcome.offered_cores * dt;
        self.served_core_secs += outcome.served_cores * dt;
        self.unserved_core_secs += outcome.unserved_cores * dt;
        self.offered_interactive_core_secs += outcome.offered_interactive_cores * dt;
        self.offered_batch_core_secs += outcome.offered_batch_cores * dt;
        self.unserved_interactive_core_secs += outcome.unserved_interactive_cores * dt;
        self.unserved_batch_core_secs += outcome.unserved_batch_cores * dt;
        self.ticks += 1;
        if outcome.unserved_cores > VIOLATION_EPS_CORES {
            self.violation_ticks += 1;
        }
        self.unserved_series.record(now, outcome.unserved_cores);

        // Queueing stretch per host: demand-based utilization drives the
        // response-time factor; demand weights the average.
        for (i, host) in cluster.hosts().iter().enumerate() {
            if host.is_operational() {
                let cap = host.capacity().cpu_cores;
                if cap > 0.0 {
                    let rho = outcome.host_demand_cores[i] / cap;
                    self.record_latency_sample(rho, outcome.host_demand_cores[i]);
                }
            }
        }

        let on = cluster.num_operational_hosts();
        self.hosts_on_series.record(now, on as f64);
        let on_capacity = cluster.operational_capacity_cores();
        if on_capacity > 0.0 {
            self.util_on.push(outcome.served_cores / on_capacity);
        }
    }

    /// Records an instantaneous cluster power sample (ticks and power
    /// events).
    pub fn record_power(&mut self, now: SimTime, watts: f64) {
        self.power_series.record(now, watts);
    }

    /// Counts a management action the cluster rejected (stale plan).
    pub fn record_action_failure(&mut self) {
        self.action_failures += 1;
    }

    /// Produces the final report. `energy_j` comes from the cluster's
    /// exact meters, not the sampled power series.
    #[allow(clippy::too_many_arguments)]
    pub fn finalize(
        self,
        scenario: String,
        policy: String,
        seed: u64,
        horizon: SimDuration,
        num_hosts: usize,
        num_vms: usize,
        energy_j: f64,
        migrations: u64,
        manager_stats: RoundStats,
        migration_busy_secs: f64,
        transition_busy_secs: f64,
        faults: FaultCounters,
        events: Vec<EventRecord>,
        metrics: MetricsSnapshot,
    ) -> SimReport {
        let hours = horizon.as_hours_f64();
        let host_secs = num_hosts as f64 * horizon.as_secs_f64();
        SimReport {
            scenario,
            policy,
            seed,
            horizon,
            num_hosts,
            num_vms,
            energy_j,
            peak_power_w: self.power_series.max().unwrap_or(0.0),
            violation_fraction: if self.ticks > 0 {
                self.violation_ticks as f64 / self.ticks as f64
            } else {
                0.0
            },
            unserved_ratio: if self.offered_core_secs > 0.0 {
                self.unserved_core_secs / self.offered_core_secs
            } else {
                0.0
            },
            unserved_interactive_ratio: if self.offered_interactive_core_secs > 0.0 {
                self.unserved_interactive_core_secs / self.offered_interactive_core_secs
            } else {
                0.0
            },
            unserved_batch_ratio: if self.offered_batch_core_secs > 0.0 {
                self.unserved_batch_core_secs / self.offered_batch_core_secs
            } else {
                0.0
            },
            migrations,
            overload_migrations: manager_stats.overload_migrations,
            consolidation_migrations: manager_stats.consolidation_migrations,
            rebalance_migrations: manager_stats.rebalance_migrations,
            power_ups: manager_stats.power_ups_requested,
            power_downs: manager_stats.power_downs_requested,
            migrations_per_hour: migrations as f64 / hours,
            power_actions_per_hour: manager_stats.power_actions() as f64 / hours,
            avg_hosts_on: self
                .hosts_on_series
                .time_weighted_mean(SimTime::ZERO + horizon)
                .unwrap_or(0.0),
            avg_util_on: self.util_on.mean(),
            action_failures: self.action_failures,
            migration_overhead_frac: if host_secs > 0.0 {
                migration_busy_secs / host_secs
            } else {
                0.0
            },
            transition_overhead_frac: if host_secs > 0.0 {
                transition_busy_secs / host_secs
            } else {
                0.0
            },
            transition_failures: faults.transition_failures,
            placement_retries: faults.placement_retries,
            migration_failures: faults.migration_failures,
            rejected_admissions: faults.rejected_admissions,
            hung_transitions: faults.hung_transitions,
            events,
            metrics,
            avg_latency_factor: if self.latency_weight > 0.0 {
                self.latency_weighted_sum / self.latency_weight
            } else {
                1.0
            },
            peak_latency_factor: self.peak_latency_factor,
            power_series: self.power_series,
            hosts_on_series: self.hosts_on_series,
            unserved_series: self.unserved_series,
        }
    }
}

/// The distilled result of one simulation run — every quantity the paper's
/// tables and figures report.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// Policy label (see [`agile_core::PowerPolicy::label`]).
    pub policy: String,
    /// Generation seed.
    pub seed: u64,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Number of hosts.
    pub num_hosts: usize,
    /// Number of VMs.
    pub num_vms: usize,
    /// Total cluster energy, joules.
    pub energy_j: f64,
    /// Peak sampled cluster power, watts.
    pub peak_power_w: f64,
    /// Fraction of demand ticks with any unserved demand.
    pub violation_fraction: f64,
    /// Unserved core-seconds over offered core-seconds.
    pub unserved_ratio: f64,
    /// Unserved fraction of *interactive-class* demand (served first).
    pub unserved_interactive_ratio: f64,
    /// Unserved fraction of *batch-class* demand (absorbs overload).
    pub unserved_batch_ratio: f64,
    /// Completed live migrations.
    pub migrations: u64,
    /// Requested migrations attributed to overload mitigation (base DRM).
    pub overload_migrations: u64,
    /// Requested migrations attributed to consolidation (PM work).
    pub consolidation_migrations: u64,
    /// Requested migrations attributed to background rebalancing.
    pub rebalance_migrations: u64,
    /// Host power-up actions requested.
    pub power_ups: u64,
    /// Host power-down actions requested.
    pub power_downs: u64,
    /// Migration rate.
    pub migrations_per_hour: f64,
    /// Power-action (up+down) rate.
    pub power_actions_per_hour: f64,
    /// Time-weighted average number of hosts in the `On` state.
    pub avg_hosts_on: f64,
    /// Average CPU utilization of powered-on capacity.
    pub avg_util_on: f64,
    /// Management actions the cluster rejected as stale.
    pub action_failures: u64,
    /// Fraction of total host-time spent carrying live migrations — the
    /// time-based management overhead the paper compares to base DRM.
    pub migration_overhead_frac: f64,
    /// Fraction of total host-time spent in transitional power states.
    pub transition_overhead_frac: f64,
    /// Power transitions that failed (fault injection).
    pub transition_failures: u64,
    /// Arriving VMs that had to wait at least one round for capacity
    /// (lifecycle churn).
    pub placement_retries: u64,
    /// Live migrations that aborted mid-flight (fault injection); the VM
    /// stayed on its source host.
    pub migration_failures: u64,
    /// Deferred arrivals whose retry would have landed past the horizon:
    /// the admission was rejected outright instead of silently dropped.
    pub rejected_admissions: u64,
    /// Power transitions that hung in a stuck interval before failing
    /// (fault injection); also counted in `transition_failures`.
    pub hung_transitions: u64,
    /// The audit log (empty unless event recording was enabled).
    pub events: Vec<EventRecord>,
    /// Deterministic snapshot of the engine's metrics registry
    /// (counters, gauges, and histograms — names in `DESIGN.md`). Empty
    /// for reports produced by analytic paths that never tick the
    /// engine.
    pub metrics: MetricsSnapshot,
    /// Demand-weighted mean response-time stretch (`1/(1-rho)`, M/M/1
    /// style) — the queueing cost of running hosts hotter.
    pub avg_latency_factor: f64,
    /// Worst single-host response-time stretch observed.
    pub peak_latency_factor: f64,
    /// Cluster power over time (step function).
    pub power_series: TimeSeries,
    /// Powered-on host count over time.
    pub hosts_on_series: TimeSeries,
    /// Unserved demand (cores) over time.
    pub unserved_series: TimeSeries,
}

impl SimReport {
    /// Total energy in kilowatt-hours.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_j / 3.6e6
    }

    /// Mean cluster power over the horizon, watts.
    pub fn avg_power_w(&self) -> f64 {
        self.energy_j / self.horizon.as_secs_f64()
    }

    /// Energy savings relative to `baseline`, as a fraction in `[0, 1]`
    /// for a win (negative if this run used more energy).
    pub fn savings_vs(&self, baseline: &SimReport) -> f64 {
        if baseline.energy_j <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy_j / baseline.energy_j
    }

    /// Fraction of offered demand that was served.
    pub fn served_fraction(&self) -> f64 {
        1.0 - self.unserved_ratio
    }

    /// Renders the full report as a JSON object (scalar fields by name,
    /// series as `[millis, value]` pair arrays, events in the trace
    /// schema, metrics via [`MetricsSnapshot::to_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("policy", Json::Str(self.policy.clone())),
            ("seed", Json::Int(self.seed as i64)),
            ("horizon_millis", Json::Int(self.horizon.as_millis() as i64)),
            ("num_hosts", Json::Int(self.num_hosts as i64)),
            ("num_vms", Json::Int(self.num_vms as i64)),
            ("energy_j", Json::Num(self.energy_j)),
            ("peak_power_w", Json::Num(self.peak_power_w)),
            ("violation_fraction", Json::Num(self.violation_fraction)),
            ("unserved_ratio", Json::Num(self.unserved_ratio)),
            (
                "unserved_interactive_ratio",
                Json::Num(self.unserved_interactive_ratio),
            ),
            ("unserved_batch_ratio", Json::Num(self.unserved_batch_ratio)),
            ("migrations", Json::Int(self.migrations as i64)),
            (
                "overload_migrations",
                Json::Int(self.overload_migrations as i64),
            ),
            (
                "consolidation_migrations",
                Json::Int(self.consolidation_migrations as i64),
            ),
            (
                "rebalance_migrations",
                Json::Int(self.rebalance_migrations as i64),
            ),
            ("power_ups", Json::Int(self.power_ups as i64)),
            ("power_downs", Json::Int(self.power_downs as i64)),
            ("migrations_per_hour", Json::Num(self.migrations_per_hour)),
            (
                "power_actions_per_hour",
                Json::Num(self.power_actions_per_hour),
            ),
            ("avg_hosts_on", Json::Num(self.avg_hosts_on)),
            ("avg_util_on", Json::Num(self.avg_util_on)),
            ("action_failures", Json::Int(self.action_failures as i64)),
            (
                "migration_overhead_frac",
                Json::Num(self.migration_overhead_frac),
            ),
            (
                "transition_overhead_frac",
                Json::Num(self.transition_overhead_frac),
            ),
            (
                "transition_failures",
                Json::Int(self.transition_failures as i64),
            ),
            (
                "placement_retries",
                Json::Int(self.placement_retries as i64),
            ),
            (
                "migration_failures",
                Json::Int(self.migration_failures as i64),
            ),
            (
                "rejected_admissions",
                Json::Int(self.rejected_admissions as i64),
            ),
            ("hung_transitions", Json::Int(self.hung_transitions as i64)),
            (
                "events",
                Json::Array(self.events.iter().map(EventRecord::to_json).collect()),
            ),
            ("metrics", self.metrics.to_json()),
            ("avg_latency_factor", Json::Num(self.avg_latency_factor)),
            ("peak_latency_factor", Json::Num(self.peak_latency_factor)),
            ("power_series", series_to_json(&self.power_series)),
            ("hosts_on_series", series_to_json(&self.hosts_on_series)),
            ("unserved_series", series_to_json(&self.unserved_series)),
        ])
    }

    /// Parses a report produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the first missing or mistyped
    /// field.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let str_f = |k: &str| -> Result<String, JsonError> {
            Ok(json
                .get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| report_field_err(k))?
                .to_string())
        };
        let u64_f = |k: &str| -> Result<u64, JsonError> {
            json.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| report_field_err(k))
        };
        let f64_f = |k: &str| -> Result<f64, JsonError> {
            json.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| report_field_err(k))
        };
        let series_f = |k: &str| -> Result<TimeSeries, JsonError> {
            series_from_json(json.get(k).ok_or_else(|| report_field_err(k))?)
        };
        let events = json
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| report_field_err("events"))?
            .iter()
            .map(EventRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let metrics = MetricsSnapshot::from_json(
            json.get("metrics")
                .ok_or_else(|| report_field_err("metrics"))?,
        )?;
        Ok(SimReport {
            scenario: str_f("scenario")?,
            policy: str_f("policy")?,
            seed: u64_f("seed")?,
            horizon: SimDuration::from_millis(u64_f("horizon_millis")?),
            num_hosts: u64_f("num_hosts")? as usize,
            num_vms: u64_f("num_vms")? as usize,
            energy_j: f64_f("energy_j")?,
            peak_power_w: f64_f("peak_power_w")?,
            violation_fraction: f64_f("violation_fraction")?,
            unserved_ratio: f64_f("unserved_ratio")?,
            unserved_interactive_ratio: f64_f("unserved_interactive_ratio")?,
            unserved_batch_ratio: f64_f("unserved_batch_ratio")?,
            migrations: u64_f("migrations")?,
            overload_migrations: u64_f("overload_migrations")?,
            consolidation_migrations: u64_f("consolidation_migrations")?,
            rebalance_migrations: u64_f("rebalance_migrations")?,
            power_ups: u64_f("power_ups")?,
            power_downs: u64_f("power_downs")?,
            migrations_per_hour: f64_f("migrations_per_hour")?,
            power_actions_per_hour: f64_f("power_actions_per_hour")?,
            avg_hosts_on: f64_f("avg_hosts_on")?,
            avg_util_on: f64_f("avg_util_on")?,
            action_failures: u64_f("action_failures")?,
            migration_overhead_frac: f64_f("migration_overhead_frac")?,
            transition_overhead_frac: f64_f("transition_overhead_frac")?,
            transition_failures: u64_f("transition_failures")?,
            placement_retries: u64_f("placement_retries")?,
            migration_failures: u64_f("migration_failures")?,
            rejected_admissions: u64_f("rejected_admissions")?,
            hung_transitions: u64_f("hung_transitions")?,
            events,
            metrics,
            avg_latency_factor: f64_f("avg_latency_factor")?,
            peak_latency_factor: f64_f("peak_latency_factor")?,
            power_series: series_f("power_series")?,
            hosts_on_series: series_f("hosts_on_series")?,
            unserved_series: series_f("unserved_series")?,
        })
    }
}

fn report_field_err(field: &str) -> JsonError {
    JsonError {
        message: format!("report missing or malformed field {field:?}"),
        offset: 0,
    }
}

/// `[[millis, value], ...]` — exact, since sample times are integral
/// milliseconds and values round-trip through the shortest-float writer.
fn series_to_json(series: &TimeSeries) -> Json {
    Json::Array(
        series
            .points()
            .iter()
            .map(|p| {
                Json::Array(vec![
                    Json::Int(p.time.as_millis() as i64),
                    Json::Num(p.value),
                ])
            })
            .collect(),
    )
}

fn series_from_json(json: &Json) -> Result<TimeSeries, JsonError> {
    let pairs = json.as_array().ok_or_else(|| report_field_err("series"))?;
    // Reconstruct verbatim rather than replaying through `record`: a
    // recorded series can contain consecutive equal values (a
    // same-instant overwrite may converge two neighbouring samples),
    // and `record` would coalesce the second away, losing a point
    // across the round-trip.
    let mut points = Vec::with_capacity(pairs.len());
    for pair in pairs {
        let pair = pair
            .as_array()
            .ok_or_else(|| report_field_err("series point"))?;
        let (millis, value) = match pair {
            [t, v] => (
                t.as_u64().ok_or_else(|| report_field_err("series time"))?,
                v.as_f64().ok_or_else(|| report_field_err("series value"))?,
            ),
            _ => return Err(report_field_err("series point")),
        };
        if !value.is_finite() {
            return Err(report_field_err("series value"));
        }
        let time = SimTime::from_millis(millis);
        if points.last().is_some_and(|&(last, _)| last >= time) {
            return Err(report_field_err("series order"));
        }
        points.push((time, value));
    }
    Ok(TimeSeries::from_points(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{HostSpec, Resources, VmSpec};
    use power::HostPowerProfile;

    fn one_host_cluster() -> Cluster {
        Cluster::new(
            vec![HostSpec::new(
                Resources::new(8.0, 64.0),
                HostPowerProfile::prototype_rack(),
            )],
            vec![VmSpec::new(Resources::new(2.0, 4.0))],
            SimTime::ZERO,
        )
    }

    fn outcome(offered: f64, served: f64) -> DemandOutcome {
        DemandOutcome {
            offered_cores: offered,
            served_cores: served,
            unserved_cores: offered - served,
            offered_interactive_cores: offered,
            offered_batch_cores: 0.0,
            unserved_interactive_cores: offered - served,
            unserved_batch_cores: 0.0,
            host_utilization: vec![served / 8.0],
            host_demand_cores: vec![offered],
        }
    }

    fn finalize(c: MetricsCollector) -> SimReport {
        c.finalize(
            "test".into(),
            "AlwaysOn".into(),
            1,
            SimDuration::from_hours(1),
            1,
            1,
            3.6e6, // exactly 1 kWh
            6,
            RoundStats {
                rounds: 12,
                migrations_requested: 6,
                power_ups_requested: 2,
                power_downs_requested: 2,
                ..RoundStats::default()
            },
            36.0, // migration busy seconds
            72.0, // transition busy seconds
            FaultCounters {
                transition_failures: 3,
                ..FaultCounters::default()
            },
            Vec::new(),
            MetricsSnapshot::new(),
        )
    }

    #[test]
    fn violation_and_ratio_accounting() {
        let cluster = one_host_cluster();
        let mut c = MetricsCollector::new(SimDuration::from_mins(30));
        c.record_tick(SimTime::ZERO, &outcome(4.0, 4.0), &cluster);
        c.record_tick(SimTime::from_secs(1800), &outcome(4.0, 3.0), &cluster);
        let r = finalize(c);
        assert_eq!(r.violation_fraction, 0.5);
        // 1 core * 1800 s unserved over 8 core*1800*... offered = 4*1800*2
        assert!((r.unserved_ratio - 1.0 / 8.0).abs() < 1e-12);
        assert!((r.served_fraction() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn report_derived_quantities() {
        let cluster = one_host_cluster();
        let mut c = MetricsCollector::new(SimDuration::from_mins(30));
        c.record_power(SimTime::ZERO, 500.0);
        c.record_power(SimTime::from_secs(600), 800.0);
        c.record_tick(SimTime::ZERO, &outcome(2.0, 2.0), &cluster);
        let r = finalize(c);
        assert!((r.energy_kwh() - 1.0).abs() < 1e-12);
        assert!((r.avg_power_w() - 1000.0).abs() < 1e-9);
        assert_eq!(r.peak_power_w, 800.0);
        assert_eq!(r.migrations_per_hour, 6.0);
        assert_eq!(r.power_actions_per_hour, 4.0);
    }

    #[test]
    fn converged_series_samples_survive_the_json_round_trip() {
        // A same-instant overwrite can leave the power series with two
        // consecutive equal-valued samples; deserialization must keep
        // both rather than coalescing the second away (regression: the
        // parse path used to replay through `TimeSeries::record`).
        let cluster = one_host_cluster();
        let mut c = MetricsCollector::new(SimDuration::from_mins(30));
        c.record_power(SimTime::ZERO, 500.0);
        c.record_power(SimTime::from_secs(600), 800.0);
        c.record_power(SimTime::from_secs(600), 500.0);
        c.record_tick(SimTime::ZERO, &outcome(2.0, 2.0), &cluster);
        let r = finalize(c);
        assert_eq!(r.power_series.len(), 2, "converged neighbours recorded");
        let text = r.to_json().to_string_compact();
        let back = SimReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r, "round-trip must preserve every sample");
    }

    #[test]
    fn savings_vs_baseline() {
        let cluster = one_host_cluster();
        let mk = |energy: f64| {
            let c = MetricsCollector::new(SimDuration::from_mins(30));
            let mut r = finalize(c);
            r.energy_j = energy;
            r
        };
        let _ = cluster;
        let base = mk(100.0);
        let pm = mk(60.0);
        assert!((pm.savings_vs(&base) - 0.4).abs() < 1e-12);
        assert!(base.savings_vs(&pm) < 0.0);
    }

    #[test]
    fn util_tracks_operational_capacity() {
        let cluster = one_host_cluster();
        let mut c = MetricsCollector::new(SimDuration::from_mins(30));
        c.record_tick(SimTime::ZERO, &outcome(4.0, 4.0), &cluster);
        let r = finalize(c);
        assert!((r.avg_util_on - 0.5).abs() < 1e-12);
        assert_eq!(r.avg_hosts_on, 1.0);
    }
}
