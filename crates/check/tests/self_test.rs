//! End-to-end self-test of the harness: a deliberately broken
//! test-local model must be shrunk to its minimal counterexample, and
//! the printed replay seed must reproduce that exact failure
//! deterministically (the ISSUE 3 acceptance criterion).

use check::gen::u64_in;
use check::{run_check, Config};

/// A test-local capacity model with a planted off-by-one: integer
/// division floors, silently dropping the fractional host. The correct
/// model is `demand.div_ceil(per_host)`.
fn hosts_needed_buggy(demand: u64, per_host: u64) -> u64 {
    demand / per_host
}

fn capacity_covers_demand(&(demand, per_host): &(u64, u64)) -> Result<(), String> {
    let hosts = hosts_needed_buggy(demand, per_host);
    check::prop_assert!(
        hosts * per_host >= demand,
        "{hosts} hosts x {per_host} cap cannot serve demand {demand}"
    );
    Ok(())
}

fn demand_and_cap() -> check::Gen<(u64, u64)> {
    u64_in(0..=1_000_000).zip(&u64_in(1..=4096))
}

#[test]
fn planted_off_by_one_shrinks_to_minimal_counterexample() {
    let failure = run_check(
        "capacity covers demand",
        &Config::fixed(),
        &demand_and_cap(),
        capacity_covers_demand,
    )
    .expect_err("the planted bug must be found");

    // The smallest input exposing floor-vs-ceil is one unit of demand on
    // two-unit hosts: 1 / 2 == 0 hosts.
    assert_eq!(
        failure.minimal,
        "(1, 2)",
        "full report:\n{}",
        failure.report()
    );
    assert!(failure.message.contains("0 hosts x 2 cap"));
    assert!(failure.report().contains("replay seed = 0x"));

    // The printed seed reproduces the identical minimal counterexample,
    // run after run.
    for _ in 0..3 {
        let replayed = run_check(
            "capacity covers demand",
            &Config::fixed().with_replay(failure.replay_seed),
            &demand_and_cap(),
            capacity_covers_demand,
        )
        .expect_err("replay must fail the same way");
        assert_eq!(replayed.minimal, failure.minimal);
        assert_eq!(replayed.message, failure.message);
        assert_eq!(replayed.replay_seed, failure.replay_seed);
    }
}

#[test]
fn fixed_model_passes_the_same_property() {
    let stats = run_check(
        "capacity covers demand (div_ceil)",
        &Config::fixed(),
        &demand_and_cap(),
        |&(demand, per_host)| {
            let hosts = demand.div_ceil(per_host);
            check::prop_assert!(hosts * per_host >= demand, "under-provisioned");
            Ok(())
        },
    )
    .expect("the corrected model must satisfy the property");
    assert!(stats.passed > 0);
}
