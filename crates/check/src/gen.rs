//! Composable value generators.
//!
//! A [`Gen<T>`] is a pure function from a choice [`Source`] to a value.
//! Combinators (`map`, `filter`, `zip`, `and_then`, [`vec_of`],
//! [`choice`], ...) compose generators without any loss of
//! shrinkability, because shrinking happens on the underlying choice
//! sequence (see [`crate::shrink`]), never on the produced values.
//!
//! Generation can *reject* (return `None`): a [`Gen::filter`] that runs
//! out of retries, or a replayed choice sequence that decodes to nothing
//! useful. The runner counts rejections and draws a fresh case.

use std::ops::RangeInclusive;
use std::rc::Rc;

use crate::source::Source;

/// How many fresh draws [`Gen::filter`] attempts before rejecting.
const FILTER_RETRIES: usize = 64;

type GenFn<T> = Rc<dyn Fn(&mut Source) -> Option<T>>;

/// A composable generator of `T` values.
pub struct Gen<T> {
    run: GenFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw generation function. The function must derive the
    /// value *only* from choices drawn from the source (never ambient
    /// state), so that replaying the choices reproduces the value.
    pub fn new(f: impl Fn(&mut Source) -> Option<T> + 'static) -> Self {
        Gen { run: Rc::new(f) }
    }

    /// Runs the generator against a source.
    pub fn sample(&self, src: &mut Source) -> Option<T> {
        (self.run)(src)
    }

    /// Applies a function to every generated value.
    pub fn map<U: 'static>(&self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let run = Rc::clone(&self.run);
        Gen::new(move |src| run(src).map(&f))
    }

    /// Keeps only values satisfying `keep`, retrying with fresh choices a
    /// bounded number of times before rejecting the case.
    pub fn filter(&self, keep: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        let run = Rc::clone(&self.run);
        Gen::new(move |src| {
            for _ in 0..FILTER_RETRIES {
                match run(src) {
                    Some(v) if keep(&v) => return Some(v),
                    Some(_) => continue,
                    None => return None,
                }
            }
            None
        })
    }

    /// Monadic bind: picks a follow-up generator from the value.
    pub fn and_then<U: 'static>(&self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        let run = Rc::clone(&self.run);
        Gen::new(move |src| f(run(src)?).sample(src))
    }

    /// Pairs this generator with another.
    pub fn zip<U: 'static>(&self, other: &Gen<U>) -> Gen<(T, U)> {
        let a = Rc::clone(&self.run);
        let b = other.clone();
        Gen::new(move |src| {
            let x = a(src)?;
            let y = b.sample(src)?;
            Some((x, y))
        })
    }
}

/// Always produces a clone of `value` (consumes no choices; shrinking
/// cannot simplify it further).
pub fn constant<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| Some(value.clone()))
}

/// Uniform `u64` in an inclusive range; shrinks toward the lower bound.
///
/// # Panics
///
/// Panics if the range is empty.
pub fn u64_in(range: RangeInclusive<u64>) -> Gen<u64> {
    let (lo, hi) = (*range.start(), *range.end());
    assert!(lo <= hi, "empty range {lo}..={hi}");
    Gen::new(move |src| {
        let raw = src.draw();
        Some(if lo == 0 && hi == u64::MAX {
            raw
        } else {
            lo + raw % (hi - lo + 1)
        })
    })
}

/// Uniform `usize` in an inclusive range; shrinks toward the lower bound.
pub fn usize_in(range: RangeInclusive<usize>) -> Gen<usize> {
    u64_in(*range.start() as u64..=*range.end() as u64).map(|v| v as usize)
}

/// Uniform `i64` in an inclusive range; shrinks toward the lower bound.
///
/// # Panics
///
/// Panics if the range is empty.
pub fn i64_in(range: RangeInclusive<i64>) -> Gen<i64> {
    let (lo, hi) = (*range.start(), *range.end());
    assert!(lo <= hi, "empty range {lo}..={hi}");
    let span = hi.abs_diff(lo);
    u64_in(0..=span).map(move |off| lo.wrapping_add_unsigned(off))
}

/// Uniform `f64` in `[0, 1)`; shrinks toward `0`.
pub fn f64_unit() -> Gen<f64> {
    Gen::new(|src| Some((src.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)))
}

/// Uniform `f64` in `[lo, hi)` (`lo` when the range is empty); shrinks
/// toward `lo`.
///
/// # Panics
///
/// Panics if either bound is not finite or `lo > hi`.
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "bad range [{lo}, {hi})"
    );
    f64_unit().map(move |u| lo + u * (hi - lo))
}

/// `true` or `false`; shrinks toward `false`.
pub fn boolean() -> Gen<bool> {
    u64_in(0..=1).map(|b| b == 1)
}

/// Picks one of the listed values; shrinks toward the first.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn one_of<T: Clone + 'static>(options: Vec<T>) -> Gen<T> {
    assert!(!options.is_empty(), "one_of needs at least one option");
    let n = options.len();
    usize_in(0..=n - 1).map(move |i| options[i].clone())
}

/// Runs one of the listed generators; shrinks toward the first.
///
/// # Panics
///
/// Panics if `gens` is empty.
pub fn choice<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "choice needs at least one generator");
    let n = gens.len();
    let index = usize_in(0..=n - 1);
    Gen::new(move |src| {
        let i = index.sample(src)?;
        gens[i].sample(src)
    })
}

/// A vector of `elem` values with a length drawn from `len`; shrinks
/// toward shorter vectors of simpler elements.
///
/// # Panics
///
/// Panics if the length range is empty.
pub fn vec_of<T: 'static>(elem: &Gen<T>, len: RangeInclusive<usize>) -> Gen<Vec<T>> {
    let length = usize_in(len);
    let elem = elem.clone();
    Gen::new(move |src| {
        let n = length.sample(src)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(elem.sample(src)?);
        }
        Some(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample100<T>(gen: &Gen<T>) -> Vec<T>
    where
        T: 'static,
    {
        let mut src = Source::fresh(1);
        (0..100).filter_map(|_| gen.sample(&mut src)).collect()
    }

    #[test]
    fn ranges_respect_bounds() {
        for v in sample100(&u64_in(3..=9)) {
            assert!((3..=9).contains(&v));
        }
        for v in sample100(&i64_in(-5..=5)) {
            assert!((-5..=5).contains(&v));
        }
        for v in sample100(&f64_in(-2.0, 2.0)) {
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn full_u64_range_is_allowed() {
        let gen = u64_in(0..=u64::MAX);
        let mut src = Source::fresh(9);
        // No panic, and values vary.
        let a = gen.sample(&mut src).unwrap();
        let b = gen.sample(&mut src).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_zip_compose() {
        let gen = u64_in(0..=9).map(|v| v * 10).zip(&boolean());
        for (v, _) in sample100(&gen) {
            assert_eq!(v % 10, 0);
            assert!(v <= 90);
        }
    }

    #[test]
    fn filter_retries_then_rejects() {
        let some_even = u64_in(0..=100).filter(|v| v % 2 == 0);
        let sampled = sample100(&some_even);
        assert!(!sampled.is_empty());
        assert!(sampled.iter().all(|v| v % 2 == 0));
        let impossible = u64_in(0..=100).filter(|_| false);
        assert_eq!(impossible.sample(&mut Source::fresh(1)), None);
    }

    #[test]
    fn vec_of_respects_length_range() {
        let gen = vec_of(&u64_in(0..=5), 2..=4);
        for v in sample100(&gen) {
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn replayed_zeros_hit_lower_bounds() {
        // The all-zero choice stream is the canonical "simplest" input:
        // every generator must map it to its simplest value.
        let mut src = Source::replay(&[]);
        assert_eq!(u64_in(7..=20).sample(&mut src), Some(7));
        assert_eq!(f64_in(1.5, 9.0).sample(&mut src), Some(1.5));
        assert_eq!(boolean().sample(&mut src), Some(false));
        assert_eq!(vec_of(&u64_in(0..=9), 0..=5).sample(&mut src), Some(vec![]));
    }

    #[test]
    fn and_then_chains_dependent_draws() {
        let gen = usize_in(1..=3).and_then(|n| vec_of(&u64_in(0..=9), n..=n));
        for v in sample100(&gen) {
            assert!((1..=3).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = vec_of(&u64_in(0..=1000), 0..=10);
        let a = gen.sample(&mut Source::fresh(5));
        let b = gen.sample(&mut Source::fresh(5));
        assert_eq!(a, b);
    }
}
