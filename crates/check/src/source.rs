//! The choice stream generators draw from.
//!
//! Every generator decision reduces to a sequence of raw `u64` *choices*.
//! A [`Source`] either draws fresh choices from a seeded
//! [`simcore::RngStream`] (recording each one), or replays a
//! previously recorded sequence. Because generators are pure functions of
//! their choice stream, *shrinking operates on the choices, not the
//! values*: any edit to the sequence re-runs the generator and yields
//! another well-formed value, so `map`/`filter`/`and_then` compose
//! without losing shrinkability.
//!
//! Choices are constructed so that **smaller is simpler**: integer
//! generators map the choice toward their lower bound, collections draw
//! their length first, alternatives shrink toward the first option. A
//! replayed source past the end of its sequence reads zeros — the
//! simplest possible suffix.

use simcore::RngStream;

/// A recorded or fresh stream of raw `u64` choices.
#[derive(Debug, Clone)]
pub struct Source {
    /// Fresh mode: the RNG to draw from. Replay mode: `None`.
    rng: Option<RngStream>,
    /// Replay mode: the sequence to read. Fresh mode: empty.
    replay: Vec<u64>,
    /// Every choice actually consumed, in order.
    record: Vec<u64>,
}

impl Source {
    /// A fresh source drawing from the given seed.
    pub fn fresh(seed: u64) -> Self {
        Source {
            rng: Some(RngStream::new(seed)),
            replay: Vec::new(),
            record: Vec::new(),
        }
    }

    /// A source replaying `choices`; reads past the end yield `0`.
    pub fn replay(choices: &[u64]) -> Self {
        Source {
            rng: None,
            replay: choices.to_vec(),
            record: Vec::new(),
        }
    }

    /// The next raw choice.
    pub fn draw(&mut self) -> u64 {
        let value = match &mut self.rng {
            Some(rng) => rng.next_u64(),
            None => self.replay.get(self.record.len()).copied().unwrap_or(0),
        };
        self.record.push(value);
        value
    }

    /// The choices consumed so far, in draw order.
    pub fn consumed(&self) -> &[u64] {
        &self.record
    }

    /// Consumes the source, returning the recorded choice sequence.
    pub fn into_choices(self) -> Vec<u64> {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_records_what_it_draws() {
        let mut a = Source::fresh(7);
        let drawn: Vec<u64> = (0..5).map(|_| a.draw()).collect();
        assert_eq!(a.consumed(), &drawn[..]);
    }

    #[test]
    fn replay_reproduces_and_pads_with_zeros() {
        let mut fresh = Source::fresh(7);
        let drawn: Vec<u64> = (0..3).map(|_| fresh.draw()).collect();
        let mut replay = Source::replay(&drawn);
        for &d in &drawn {
            assert_eq!(replay.draw(), d);
        }
        assert_eq!(replay.draw(), 0, "past-the-end reads are zero");
        assert_eq!(replay.consumed().len(), 4);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Source::fresh(42);
        let mut b = Source::fresh(42);
        for _ in 0..10 {
            assert_eq!(a.draw(), b.draw());
        }
    }
}
