//! Zero-dependency property-based testing with deterministic replay.
//!
//! `check` is the workspace's answer to proptest under the std-only
//! constraint: composable [`Gen<T>`](gen::Gen) generators driven by a
//! recorded choice stream ([`source::Source`]), greedy choice-sequence
//! shrinking ([`shrink`]), and a runner ([`runner`]) that prints a
//! `replay seed = 0x…` on failure. Re-running with that seed — via
//! [`AGILEPM_CHECK_REPLAY`](runner::REPLAY_ENV) or
//! [`Config::with_replay`](runner::Config::with_replay) — regenerates
//! the same case and re-shrinks it to the same minimal counterexample,
//! because generation, properties, and shrinking are all pure functions
//! of the seed.
//!
//! # Writing a property
//!
//! ```
//! use check::gen::{u64_in, vec_of};
//!
//! check::check("reverse is an involution", &vec_of(&u64_in(0..=100), 0..=16), |v| {
//!     let mut twice = v.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     check::prop_assert_eq!(&twice, v);
//!     Ok(())
//! });
//! ```
//!
//! Case count defaults to [`runner::DEFAULT_CASES`] and is raised in CI
//! via the [`AGILEPM_CHECK_CASES`](runner::CASES_ENV) environment
//! variable. Properties return `Result<(), String>`; the
//! [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assert_ne!`]
//! macros build the error strings, and plain panics inside a property
//! are caught and shrunk too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod runner;
pub mod shrink;
pub mod source;

pub use gen::Gen;
pub use runner::{check, check_cases, check_with, run_check, CheckStats, Config, Failure};
pub use source::Source;

/// Fails the enclosing property unless the condition holds.
///
/// Like `assert!`, but returns an `Err(String)` instead of panicking,
/// which keeps failure messages clean in shrink reports. Accepts an
/// optional `format!`-style message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Fails the enclosing property unless the two expressions are equal,
/// reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}: {:?} vs {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: {:?} vs {:?}",
                format!($($arg)+),
                l,
                r
            ));
        }
    }};
}

/// Fails the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "{} == {}: both {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "{}: both {:?}",
                format!($($arg)+),
                l
            ));
        }
    }};
}
