//! The property runner: case generation, failure detection, shrinking,
//! and replay.
//!
//! [`run_check`] drives `cases` generated values through a property. On
//! the first failure it shrinks the recorded choice sequence to a
//! minimal counterexample and returns a [`Failure`] carrying a *replay
//! seed*. Re-running the same property with that seed (via
//! `AGILEPM_CHECK_REPLAY` or [`Config::replay`]) deterministically
//! regenerates the same failing case and re-shrinks it to the same
//! minimal counterexample — generation, property, and shrinking are all
//! pure functions of the seed.

use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use simcore::RngStream;

use crate::gen::Gen;
use crate::shrink::shrink;
use crate::source::Source;

/// Environment variable overriding the number of generated cases.
pub const CASES_ENV: &str = "AGILEPM_CHECK_CASES";
/// Environment variable forcing a single-case replay of a failure seed.
pub const REPLAY_ENV: &str = "AGILEPM_CHECK_REPLAY";

/// Default number of cases per property when no override is set.
pub const DEFAULT_CASES: usize = 64;
/// Default budget of candidate sequences evaluated while shrinking.
pub const DEFAULT_SHRINK_ATTEMPTS: usize = 4096;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// How many generated cases to run.
    pub cases: usize,
    /// Master seed; per-case seeds are split off this stream.
    pub seed: u64,
    /// Maximum candidate sequences evaluated while shrinking a failure.
    pub max_shrink_attempts: usize,
    /// When set, skip generation and replay exactly this case seed.
    pub replay: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config::from_env()
    }
}

impl Config {
    /// The built-in defaults, ignoring the environment.
    pub fn fixed() -> Self {
        Config {
            cases: DEFAULT_CASES,
            seed: 0x5EED_CAFE_F00D_0001,
            max_shrink_attempts: DEFAULT_SHRINK_ATTEMPTS,
            replay: None,
        }
    }

    /// Defaults with `AGILEPM_CHECK_CASES` / `AGILEPM_CHECK_REPLAY`
    /// applied. Unparseable values are ignored rather than panicking so
    /// a stray variable never masks the suite.
    pub fn from_env() -> Self {
        let mut config = Config::fixed();
        if let Ok(raw) = std::env::var(CASES_ENV) {
            if let Ok(cases) = raw.trim().parse::<usize>() {
                if cases > 0 {
                    config.cases = cases;
                }
            }
        }
        if let Ok(raw) = std::env::var(REPLAY_ENV) {
            config.replay = parse_seed(&raw);
        }
        config
    }

    /// This configuration with a different case count.
    pub fn with_cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// This configuration replaying one specific case seed.
    pub fn with_replay(mut self, seed: u64) -> Self {
        self.replay = Some(seed);
        self
    }
}

/// Parses a replay seed: hexadecimal with an optional `0x` prefix
/// (the format failures print), or plain decimal.
fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        u64::from_str_radix(raw, 16)
            .ok()
            .or_else(|| raw.parse().ok())
    }
}

/// Statistics from a passing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Cases that generated a value and passed the property.
    pub passed: usize,
    /// Cases rejected during generation (e.g. a filter ran dry).
    pub rejected: usize,
}

/// A minimal counterexample.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Name of the failing property.
    pub property: String,
    /// Seed that deterministically reproduces this exact failure.
    pub replay_seed: u64,
    /// Index of the failing case within the run.
    pub case: usize,
    /// `Debug` rendering of the minimal counterexample value.
    pub minimal: String,
    /// The property's error (or captured panic) on the minimal value.
    pub message: String,
    /// Candidate sequences evaluated while shrinking.
    pub shrink_attempts: usize,
}

impl Failure {
    /// The multi-line report printed when a property fails, including
    /// the `replay seed = 0x…` line the replay workflow keys off.
    pub fn report(&self) -> String {
        format!(
            "property `{}` failed (case {})\n  minimal counterexample: {}\n  error: {}\n  \
             replay seed = {:#018x}  (set {}={:#x} to re-run exactly this case)\n  \
             shrink attempts: {}",
            self.property,
            self.case,
            self.minimal,
            self.message,
            self.replay_seed,
            REPLAY_ENV,
            self.replay_seed,
            self.shrink_attempts,
        )
    }
}

thread_local! {
    /// True while this thread is probing a property for failure; the
    /// global panic hook stays quiet so shrink re-runs don't spam
    /// stderr with hundreds of expected panics.
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses output
/// for panics raised while probing properties and defers to the
/// previous hook otherwise.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

/// Renders a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Generates a value from `choices` and evaluates the property,
/// catching panics. `Ok(None)` means generation rejected the case.
fn eval<T: Debug + 'static>(
    gen: &Gen<T>,
    prop: &dyn Fn(&T) -> Result<(), String>,
    choices: &[u64],
) -> EvalOutcome {
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let generated = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut src = Source::replay(choices);
        gen.sample(&mut src).map(|v| (v, src.into_choices()))
    }));
    let (value, consumed) = match generated {
        Err(_) => {
            QUIET_PANICS.with(|q| q.set(false));
            return EvalOutcome::Panicked;
        }
        Ok(None) => {
            QUIET_PANICS.with(|q| q.set(false));
            return EvalOutcome::Rejected;
        }
        Ok(Some(pair)) => pair,
    };
    let verdict = panic::catch_unwind(AssertUnwindSafe(|| prop(&value)));
    QUIET_PANICS.with(|q| q.set(false));
    match verdict {
        Ok(Ok(())) => EvalOutcome::Passed,
        Ok(Err(message)) => EvalOutcome::Failed {
            consumed,
            minimal: format!("{value:?}"),
            message,
        },
        // A panicking property is an ordinary failure: the value and the
        // consumed choices are intact, so it shrinks like any other.
        Err(payload) => EvalOutcome::Failed {
            consumed,
            minimal: format!("{value:?}"),
            message: panic_message(payload),
        },
    }
}

enum EvalOutcome {
    Rejected,
    Passed,
    Failed {
        consumed: Vec<u64>,
        minimal: String,
        message: String,
    },
    /// The *generator* panicked; there is no value and no reliable
    /// consumed prefix. (Fresh-path generator panics are reported
    /// directly by [`run_case`]; here the candidate is just discarded.)
    Panicked,
}

/// Runs one case from its seed; `Some` is a (shrunk) failure.
fn run_case<T: Debug + 'static>(
    property: &str,
    gen: &Gen<T>,
    prop: &dyn Fn(&T) -> Result<(), String>,
    case: usize,
    case_seed: u64,
    config: &Config,
) -> Option<Result<(), Box<Failure>>> {
    // Record this case's fresh choice sequence, then route everything —
    // failure detection, shrinking, final rendering — through the one
    // replay-based eval path.
    let mut src = Source::fresh(case_seed);
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let generated = panic::catch_unwind(AssertUnwindSafe(|| gen.sample(&mut src).is_some()));
    QUIET_PANICS.with(|q| q.set(false));
    let initial = match generated {
        Err(payload) => {
            // Generator itself panicked: not shrinkable, report as-is.
            return Some(Err(Box::new(Failure {
                property: property.to_string(),
                replay_seed: case_seed,
                case,
                minimal: "<generator panicked>".to_string(),
                message: panic_message(payload),
                shrink_attempts: 0,
            })));
        }
        Ok(false) => return Some(Ok(())), // rejected
        Ok(true) => src.into_choices(),
    };
    let (consumed, mut minimal, mut message) = match eval(gen, prop, &initial) {
        EvalOutcome::Passed => return None,
        EvalOutcome::Rejected | EvalOutcome::Panicked => return Some(Ok(())),
        EvalOutcome::Failed {
            consumed,
            minimal,
            message,
        } => (consumed, minimal, message),
    };

    let outcome = shrink(consumed, config.max_shrink_attempts, |cand| {
        match eval(gen, prop, cand) {
            EvalOutcome::Failed { consumed, .. } => Some(consumed),
            EvalOutcome::Passed | EvalOutcome::Rejected | EvalOutcome::Panicked => None,
        }
    });
    // Render the minimal value and its error for the report.
    if let EvalOutcome::Failed {
        minimal: m,
        message: e,
        ..
    } = eval(gen, prop, &outcome.choices)
    {
        minimal = m;
        message = e;
    }
    Some(Err(Box::new(Failure {
        property: property.to_string(),
        replay_seed: case_seed,
        case,
        minimal,
        message,
        shrink_attempts: outcome.attempts,
    })))
}

/// Runs `prop` against values from `gen` under `config`.
///
/// Returns run statistics, or the first (shrunk) failure. Boxed because
/// a [`Failure`] is much larger than the stats.
pub fn run_check<T: Debug + 'static>(
    property: &str,
    config: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) -> Result<CheckStats, Box<Failure>> {
    if let Some(seed) = config.replay {
        return match run_case(property, gen, &prop, 0, seed, config) {
            None => Ok(CheckStats {
                passed: 1,
                rejected: 0,
            }),
            Some(Ok(())) => Ok(CheckStats {
                passed: 0,
                rejected: 1,
            }),
            Some(Err(failure)) => Err(failure),
        };
    }
    let mut master = RngStream::new(config.seed);
    let mut stats = CheckStats {
        passed: 0,
        rejected: 0,
    };
    for case in 0..config.cases {
        let case_seed = master.next_u64();
        match run_case(property, gen, &prop, case, case_seed, config) {
            None => stats.passed += 1,
            Some(Ok(())) => stats.rejected += 1,
            Some(Err(failure)) => return Err(failure),
        }
    }
    Ok(stats)
}

/// Runs a property under the environment-derived [`Config`], panicking
/// with a full report (including the replay seed) on failure.
///
/// This is the entry point ordinary tests use:
///
/// ```
/// use check::gen::u64_in;
/// check::check("addition commutes", &u64_in(0..=9).zip(&u64_in(0..=9)), |&(a, b)| {
///     check::prop_assert_eq!(a + b, b + a);
///     Ok(())
/// });
/// ```
pub fn check<T: Debug + 'static>(
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    check_with(name, &Config::from_env(), gen, prop);
}

/// [`check`] with an explicit case count (still honoring a replay
/// request from the environment).
pub fn check_cases<T: Debug + 'static>(
    name: &str,
    cases: usize,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    check_with(name, &Config::from_env().with_cases(cases), gen, prop);
}

/// [`check`] with a fully explicit configuration.
pub fn check_with<T: Debug + 'static>(
    name: &str,
    config: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    if let Err(failure) = run_check(name, config, gen, prop) {
        panic!("{}", failure.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{u64_in, vec_of};

    #[test]
    fn passing_property_reports_stats() {
        let stats = run_check(
            "u64 fits its range",
            &Config::fixed(),
            &u64_in(10..=20),
            |&v| {
                if (10..=20).contains(&v) {
                    Ok(())
                } else {
                    Err(format!("{v} out of range"))
                }
            },
        )
        .unwrap();
        assert_eq!(stats.passed, DEFAULT_CASES);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let failure = run_check(
            "all values below 100",
            &Config::fixed(),
            &u64_in(0..=1_000_000),
            |&v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err(format!("{v} >= 100"))
                }
            },
        )
        .unwrap_err();
        assert_eq!(failure.minimal, "100");
        assert_eq!(failure.message, "100 >= 100");
        assert!(failure.report().contains("replay seed = 0x"));
    }

    #[test]
    fn replay_seed_reproduces_identical_failure() {
        let prop = |v: &Vec<u64>| {
            if v.iter().sum::<u64>() < 50 {
                Ok(())
            } else {
                Err("sum too large".to_string())
            }
        };
        let gen = vec_of(&u64_in(0..=40), 0..=8);
        let first = run_check("bounded sum", &Config::fixed(), &gen, prop).unwrap_err();
        let replayed = run_check(
            "bounded sum",
            &Config::fixed().with_replay(first.replay_seed),
            &gen,
            prop,
        )
        .unwrap_err();
        assert_eq!(first.minimal, replayed.minimal);
        assert_eq!(first.message, replayed.message);
        assert_eq!(first.replay_seed, replayed.replay_seed);
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let failure = run_check("no panics", &Config::fixed(), &u64_in(0..=10_000), |&v| {
            assert!(v < 37, "hit {v}");
            Ok(())
        })
        .unwrap_err();
        assert_eq!(failure.minimal, "37");
        assert!(failure.message.contains("hit 37"));
    }

    #[test]
    fn rejection_heavy_generators_count_rejections() {
        let gen = u64_in(0..=1).filter(|_| false);
        let stats = run_check("never runs", &Config::fixed(), &gen, |_| Ok(())).unwrap();
        assert_eq!(stats.passed, 0);
        assert_eq!(stats.rejected, DEFAULT_CASES);
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x1f"), Some(31));
        assert_eq!(parse_seed("0X1F"), Some(31));
        assert_eq!(parse_seed("1f"), Some(31));
        assert_eq!(parse_seed(" 42 "), Some(66)); // hex first, like the report prints
        assert_eq!(parse_seed("zz"), None);
    }
}
