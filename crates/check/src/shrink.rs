//! Greedy choice-sequence shrinking.
//!
//! A failing case is a recorded choice sequence. The shrinker edits that
//! sequence — deleting chunks, zeroing chunks, and bisecting individual
//! choices toward zero — and keeps any edit that still fails. Because
//! generators map *smaller choices to simpler values* (see
//! [`crate::source`]), minimizing the sequence minimizes the
//! counterexample, for any composition of generators.
//!
//! The shrinker is deterministic: the same failing sequence and the same
//! property always reduce to the same minimal sequence.

/// Chunk sizes tried by the deletion and zeroing passes, largest first.
const CHUNK_SIZES: [usize; 5] = [32, 8, 4, 2, 1];

/// The result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal failing choice sequence found.
    pub choices: Vec<u64>,
    /// How many candidate sequences were evaluated.
    pub attempts: usize,
}

/// Is `a` strictly simpler than `b`? Fewer choices, or the same number
/// but lexicographically smaller. This is a well-founded order, so
/// shrinking always terminates even without the attempt budget.
fn simpler(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

/// Minimizes a failing choice sequence.
///
/// `still_fails` replays a candidate sequence through the generator and
/// the property; it returns the *normalized* (actually consumed) choices
/// when the candidate still generates a value and the property still
/// fails, and `None` otherwise. `initial` must be such a normalized
/// failing sequence. At most `budget` candidates are evaluated.
pub fn shrink(
    initial: Vec<u64>,
    budget: usize,
    mut still_fails: impl FnMut(&[u64]) -> Option<Vec<u64>>,
) -> ShrinkOutcome {
    let mut best = initial;
    let mut attempts = 0usize;

    // One closure-free helper keeps the borrow checker happy: evaluate a
    // candidate, return the normalized sequence if it fails and is
    // simpler than the current best.
    macro_rules! try_improve {
        ($cand:expr) => {{
            attempts += 1;
            match still_fails(&$cand) {
                Some(norm) if simpler(&norm, &best) => {
                    best = norm;
                    true
                }
                Some(_) => false,
                None => false,
            }
        }};
    }

    let mut improved = true;
    while improved && attempts < budget {
        improved = false;

        // Pass 1: delete chunks, largest first, scanning from the end so
        // trailing (often unused) choices go first.
        for size in CHUNK_SIZES {
            let mut start = best.len().saturating_sub(size);
            loop {
                if attempts >= budget || best.is_empty() {
                    break;
                }
                if start + size <= best.len() {
                    let mut cand = best.clone();
                    cand.drain(start..start + size);
                    if try_improve!(cand) {
                        improved = true;
                        start = start.min(best.len());
                    }
                }
                if start == 0 {
                    break;
                }
                start = start.saturating_sub(size);
            }
        }

        // Pass 2: zero chunks that are not already zero.
        for size in CHUNK_SIZES {
            let mut start = 0usize;
            while start + size <= best.len() && attempts < budget {
                if best[start..start + size].iter().any(|&c| c != 0) {
                    let mut cand = best.clone();
                    cand[start..start + size].fill(0);
                    if try_improve!(cand) {
                        improved = true;
                    }
                }
                start += size;
            }
        }

        // Pass 3: bisect each choice toward zero. Zero is tried by pass
        // 2; here we find the smallest still-failing value assuming the
        // failure region is (locally) upward-closed — when it is not,
        // the greedy outer loop still converges, just less far.
        let mut i = 0usize;
        while i < best.len() && attempts < budget {
            if best[i] > 0 {
                let mut lo = 0u64; // assumed passing (pass 2 tried it)
                let mut hi = best[i]; // known failing
                while hi - lo > 1 && attempts < budget {
                    let mid = lo + (hi - lo) / 2;
                    let mut cand = best.clone();
                    cand[i] = mid;
                    if try_improve!(cand) {
                        improved = true;
                        // best changed; re-anchor on the same index if it
                        // still exists, else abandon this element.
                        if i >= best.len() {
                            break;
                        }
                        hi = best[i].min(mid);
                    } else {
                        lo = mid;
                    }
                    if hi <= lo {
                        break;
                    }
                }
            }
            i += 1;
        }
    }

    ShrinkOutcome {
        choices: best,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{u64_in, vec_of};
    use crate::source::Source;

    /// Shrinks against a real generator + property pipeline.
    fn shrink_prop<T: 'static>(
        gen: &crate::gen::Gen<T>,
        fails: impl Fn(&T) -> bool + Copy,
        seed: u64,
    ) -> Option<T> {
        // Find a failing case first.
        let mut found = None;
        for case in 0..1000 {
            let mut src = Source::fresh(seed.wrapping_add(case));
            if let Some(v) = gen.sample(&mut src) {
                if fails(&v) {
                    found = Some(src.into_choices());
                    break;
                }
            }
        }
        let initial = found?;
        let outcome = shrink(initial, 10_000, |cand| {
            let mut src = Source::replay(cand);
            let v = gen.sample(&mut src)?;
            if fails(&v) {
                Some(src.into_choices())
            } else {
                None
            }
        });
        let mut src = Source::replay(&outcome.choices);
        gen.sample(&mut src)
    }

    #[test]
    fn integer_shrinks_to_boundary() {
        // "fails iff >= 100" must shrink to exactly 100.
        let minimal = shrink_prop(&u64_in(0..=100_000), |&v| v >= 100, 1).unwrap();
        assert_eq!(minimal, 100);
    }

    #[test]
    fn offset_range_shrinks_to_boundary() {
        let minimal = shrink_prop(&u64_in(50..=100_000), |&v| v > 72, 2).unwrap();
        assert_eq!(minimal, 73);
    }

    #[test]
    fn vector_shrinks_length_and_elements() {
        // "fails iff it contains an element >= 10" must shrink to the
        // single-element vector [10].
        let gen = vec_of(&u64_in(0..=1000), 0..=20);
        let minimal = shrink_prop(&gen, |v| v.iter().any(|&x| x >= 10), 3).unwrap();
        assert_eq!(minimal, vec![10]);
    }

    #[test]
    fn termination_without_budget_pressure() {
        // A property that always fails shrinks to the empty sequence's
        // value (the simplest representable case).
        let minimal = shrink_prop(&u64_in(5..=50), |_| true, 4).unwrap();
        assert_eq!(minimal, 5);
    }
}
