//! Canonical fleets used by the experiment harness.
//!
//! Each preset reproduces a workload archetype from the paper's
//! evaluation. Parameters are chosen so a fleet sized at ~4 VMs per host
//! produces the day/night utilization swing (roughly 25 %–75 % of cluster
//! capacity) that makes consolidation worthwhile.

use cluster::Resources;
use simcore::SimDuration;

use crate::{DemandProcess, FleetSpec, Shape, VmClass};

/// The main evaluation mix: interactive web/app tiers with a strong
/// diurnal swing plus a night-shifted batch tier.
///
/// * 50 % `web` — 2 cores / 4 GB, diurnal 0.40 ± 0.28, noisy.
/// * 30 % `app` — 4 cores / 8 GB, diurnal 0.35 ± 0.20, noisy.
/// * 20 % `batch` — 4 cores / 8 GB, square wave active 30 % of the day
///   (anti-phase with the interactive peak), light noise.
pub fn enterprise_diurnal() -> FleetSpec {
    FleetSpec::new(vec![
        VmClass::new(
            "web",
            Resources::new(2.0, 4.0),
            DemandProcess::new(Shape::diurnal(0.40, 0.28)).with_noise(0.9, 0.06),
            0.5,
        ),
        VmClass::new(
            "app",
            Resources::new(4.0, 8.0),
            DemandProcess::new(Shape::diurnal(0.35, 0.20)).with_noise(0.9, 0.05),
            0.3,
        ),
        VmClass::new(
            "batch",
            Resources::new(4.0, 8.0),
            DemandProcess::new(Shape::Square {
                low: 0.05,
                high: 0.75,
                period: SimDuration::from_hours(24),
                duty: 0.3,
                phase: 0.55, // runs overnight, opposite the web peak
            })
            .with_noise(0.8, 0.04),
            0.2,
        )
        .batch(),
    ])
}

/// The enterprise mix with fleet-correlated flash crowds layered on the
/// web tier — used by experiments that stress responsiveness under burst
/// arrivals. The spikes hit every web VM simultaneously (a service-wide
/// flash crowd), which is precisely the regime where host wake-up latency
/// shows up as unserved demand.
pub fn enterprise_with_spikes() -> FleetSpec {
    FleetSpec::new(vec![
        VmClass::new(
            "web-spiky",
            Resources::new(2.0, 4.0),
            DemandProcess::new(Shape::diurnal(0.40, 0.28))
                .with_noise(0.9, 0.06)
                .with_fleet_spikes(6.0, 0.35, SimDuration::from_mins(15)),
            0.5,
        ),
        VmClass::new(
            "app",
            Resources::new(4.0, 8.0),
            DemandProcess::new(Shape::diurnal(0.35, 0.20)).with_noise(0.9, 0.05),
            0.3,
        ),
        VmClass::new(
            "batch",
            Resources::new(4.0, 8.0),
            DemandProcess::new(Shape::Square {
                low: 0.05,
                high: 0.75,
                period: SimDuration::from_hours(24),
                duty: 0.3,
                phase: 0.55,
            })
            .with_noise(0.8, 0.04),
            0.2,
        )
        .batch(),
    ])
}

/// A week-long enterprise mix: the diurnal web/app tiers damp to 40 % on
/// weekends while batch keeps its nightly windows — the multi-day regime
/// where consolidation harvests whole weekend days and the learned
/// time-of-day profile (pre-waking) has something to learn.
pub fn enterprise_weekly() -> FleetSpec {
    FleetSpec::new(vec![
        VmClass::new(
            "web",
            Resources::new(2.0, 4.0),
            DemandProcess::new(Shape::WeeklyDiurnal {
                base: 0.40,
                amplitude: 0.28,
                phase: 0.0,
                weekend_scale: 0.4,
            })
            .with_noise(0.9, 0.06),
            0.5,
        ),
        VmClass::new(
            "app",
            Resources::new(4.0, 8.0),
            DemandProcess::new(Shape::WeeklyDiurnal {
                base: 0.35,
                amplitude: 0.20,
                phase: 0.0,
                weekend_scale: 0.4,
            })
            .with_noise(0.9, 0.05),
            0.3,
        ),
        VmClass::new(
            "batch",
            Resources::new(4.0, 8.0),
            DemandProcess::new(Shape::Square {
                low: 0.05,
                high: 0.75,
                period: SimDuration::from_hours(24),
                duty: 0.3,
                phase: 0.55,
            })
            .with_noise(0.8, 0.04),
            0.2,
        )
        .batch(),
    ])
}

/// A synchronized flash-crowd stimulus: every VM idles at `low` until
/// `step_at`, then jumps to `high` simultaneously. Used by the wake-latency
/// responsiveness sweep (experiment F7), where the interesting quantity is
/// how long demand goes unserved while hosts wake up.
pub fn flash_crowd(low: f64, high: f64, step_at: SimDuration) -> FleetSpec {
    FleetSpec::new(vec![VmClass::new(
        "flash",
        Resources::new(2.0, 4.0),
        DemandProcess::new(Shape::Step {
            low,
            high,
            at: step_at,
        }),
        1.0,
    )
    .aligned()])
}

/// A flat, tunable load for energy-proportionality curves (experiment F6):
/// every VM draws `level` of its cap continuously.
pub fn steady(level: f64) -> FleetSpec {
    FleetSpec::new(vec![VmClass::new(
        "steady",
        Resources::new(2.0, 4.0),
        DemandProcess::new(Shape::constant(level)),
        1.0,
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn enterprise_mix_has_diurnal_swing() {
        let fleet = enterprise_diurnal().generate(
            200,
            SimDuration::from_hours(24),
            SimDuration::from_mins(15),
            42,
        );
        // Aggregate demand at the daily peak should be well above the
        // trough — the swing consolidation exploits.
        let samples = fleet.traces()[0].len();
        let series: Vec<f64> = (0..samples)
            .map(|k| fleet.aggregate_demand_cores(k))
            .collect();
        let peak = series.iter().copied().fold(0.0, f64::max);
        let trough = series.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            peak > 1.8 * trough,
            "peak {peak:.1} vs trough {trough:.1}: no usable swing"
        );
    }

    #[test]
    fn weekly_mix_damps_weekend_aggregate() {
        let fleet = enterprise_weekly().generate(
            120,
            SimDuration::from_hours(7 * 24),
            SimDuration::from_mins(30),
            4,
        );
        // Compare the same daytime window on day 2 (weekday) and day 6
        // (weekend).
        let k = |day: usize, hour: usize| (day * 24 + hour) * 2; // 30-min samples
        let weekday: f64 = (10..16)
            .map(|h| fleet.aggregate_demand_cores(k(1, h)))
            .sum();
        let weekend: f64 = (10..16)
            .map(|h| fleet.aggregate_demand_cores(k(5, h)))
            .sum();
        assert!(
            weekend < 0.75 * weekday,
            "weekend {weekend:.0} not damped vs weekday {weekday:.0}"
        );
    }

    #[test]
    fn flash_crowd_steps_everywhere_at_once() {
        let fleet = flash_crowd(0.1, 0.9, SimDuration::from_hours(1)).generate(
            10,
            SimDuration::from_hours(2),
            SimDuration::from_mins(5),
            1,
        );
        for t in fleet.traces() {
            assert_eq!(t.samples()[0], 0.1);
            assert_eq!(*t.samples().last().unwrap(), 0.9);
        }
    }

    #[test]
    fn steady_is_flat() {
        let fleet =
            steady(0.5).generate(5, SimDuration::from_hours(1), SimDuration::from_mins(5), 1);
        for t in fleet.traces() {
            assert!(t.samples().iter().all(|&s| s == 0.5));
        }
    }

    #[test]
    fn spiky_preset_raises_aggregate_demand() {
        // Correlated flash crowds land at random times of day, so compare
        // demand mass rather than a single peak, across a few seeds.
        let mut spikier = 0;
        for seed in 1..=5 {
            let calm = enterprise_diurnal().generate(
                100,
                SimDuration::from_hours(24),
                SimDuration::from_mins(5),
                seed,
            );
            let spiky = enterprise_with_spikes().generate(
                100,
                SimDuration::from_hours(24),
                SimDuration::from_mins(5),
                seed,
            );
            let mass = |f: &crate::Fleet| -> f64 {
                (0..f.traces()[0].len())
                    .map(|k| f.aggregate_demand_cores(k))
                    .sum()
            };
            if mass(&spiky) > mass(&calm) {
                spikier += 1;
            }
        }
        assert!(spikier >= 4, "spiky mix heavier in only {spikier}/5 seeds");
    }

    #[test]
    fn spiky_preset_web_tier_spikes_together() {
        let fleet = enterprise_with_spikes().generate(
            60,
            SimDuration::from_hours(24),
            SimDuration::from_mins(5),
            9,
        );
        // Collect web VMs and confirm their biggest positive demand jumps
        // coincide (fleet-correlated windows).
        let web: Vec<usize> = (0..fleet.len())
            .filter(|&i| fleet.class_name(i) == "web-spiky")
            .collect();
        assert!(web.len() > 10);
        let jump_instant = |i: usize| -> usize {
            let s = fleet.traces()[i].samples();
            (1..s.len())
                .max_by(|&a, &b| (s[a] - s[a - 1]).partial_cmp(&(s[b] - s[b - 1])).unwrap())
                .unwrap()
        };
        let first = jump_instant(web[0]);
        let agreeing = web
            .iter()
            .filter(|&&i| jump_instant(i).abs_diff(first) <= 1)
            .count();
        assert!(
            agreeing * 2 > web.len(),
            "only {agreeing}/{} web VMs jump together",
            web.len()
        );
    }
}
