//! Demand processes: deterministic shapes plus stochastic modifiers.

use simcore::{RngStream, SimDuration, SimTime};

use crate::DemandTrace;

/// The deterministic component of a demand process, as a fraction of the
/// VM's CPU cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Flat demand at `level`.
    Constant {
        /// Demand fraction in `[0, 1]`.
        level: f64,
    },
    /// A 24 h sinusoid: `base + amplitude · sin(2π(t/period + phase))`.
    ///
    /// Enterprise interactive workloads follow this pattern; amplitude of
    /// roughly half the base reproduces the day/night swing the paper's
    /// consolidation manager exploits.
    Diurnal {
        /// Mean demand fraction.
        base: f64,
        /// Swing around the mean.
        amplitude: f64,
        /// Cycle length (24 h for a daily pattern).
        period: SimDuration,
        /// Phase offset as a fraction of the period in `[0, 1)`.
        phase: f64,
    },
    /// A single step from `low` to `high` at time `at` — the flash-crowd
    /// stimulus for responsiveness experiments.
    Step {
        /// Demand before the step.
        low: f64,
        /// Demand after the step.
        high: f64,
        /// When the step happens.
        at: SimDuration,
    },
    /// A weekly enterprise pattern: a 24 h diurnal sinusoid whose
    /// amplitude and base are damped on days 6 and 7 of each week
    /// (the weekend), reflecting business-hour demand.
    WeeklyDiurnal {
        /// Weekday mean demand fraction.
        base: f64,
        /// Weekday swing around the mean.
        amplitude: f64,
        /// Phase offset as a fraction of the 24 h day in `[0, 1)`.
        phase: f64,
        /// Multiplier applied to both base and amplitude on weekends,
        /// in `[0, 1]`.
        weekend_scale: f64,
    },
    /// A square wave (batch windows): `high` for `duty` of each period
    /// starting at `phase`, `low` otherwise.
    Square {
        /// Demand outside the active window.
        low: f64,
        /// Demand inside the active window.
        high: f64,
        /// Cycle length.
        period: SimDuration,
        /// Fraction of the period spent at `high`, in `(0, 1)`.
        duty: f64,
        /// Phase offset as a fraction of the period in `[0, 1)`.
        phase: f64,
    },
}

impl Shape {
    /// Convenience constructor for a flat shape.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, 1]`.
    pub fn constant(level: f64) -> Self {
        assert!((0.0..=1.0).contains(&level), "level {level} outside [0,1]");
        Shape::Constant { level }
    }

    /// Convenience constructor for a 24 h diurnal shape with zero phase.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `amplitude` is negative, or `base + amplitude`
    /// exceeds 1.
    pub fn diurnal(base: f64, amplitude: f64) -> Self {
        assert!(base >= 0.0 && amplitude >= 0.0, "negative diurnal params");
        assert!(base + amplitude <= 1.0, "diurnal peak exceeds 1.0");
        Shape::Diurnal {
            base,
            amplitude,
            period: SimDuration::from_hours(24),
            phase: 0.0,
        }
    }

    /// The shape's value at `t`, clamped to `[0, 1]`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        let v = match *self {
            Shape::Constant { level } => level,
            Shape::Diurnal {
                base,
                amplitude,
                period,
                phase,
            } => {
                let frac = t.as_secs_f64() / period.as_secs_f64() + phase;
                base + amplitude * (std::f64::consts::TAU * frac).sin()
            }
            Shape::WeeklyDiurnal {
                base,
                amplitude,
                phase,
                weekend_scale,
            } => {
                let day = (t.as_secs_f64() / 86_400.0).floor() as u64 % 7;
                let scale = if day >= 5 { weekend_scale } else { 1.0 };
                let frac = t.as_secs_f64() / 86_400.0 + phase;
                scale * (base + amplitude * (std::f64::consts::TAU * frac).sin())
            }
            Shape::Step { low, high, at } => {
                if t.as_millis() >= at.as_millis() {
                    high
                } else {
                    low
                }
            }
            Shape::Square {
                low,
                high,
                period,
                duty,
                phase,
            } => {
                let frac = (t.as_secs_f64() / period.as_secs_f64() + phase).fract();
                if frac < duty {
                    high
                } else {
                    low
                }
            }
        };
        v.clamp(0.0, 1.0)
    }

    /// A copy with the phase replaced (for shapes that have one); other
    /// shapes are returned unchanged. Fleet generation uses this to
    /// de-synchronize VMs.
    pub fn with_phase(self, new_phase: f64) -> Shape {
        match self {
            Shape::Diurnal {
                base,
                amplitude,
                period,
                ..
            } => Shape::Diurnal {
                base,
                amplitude,
                period,
                phase: new_phase,
            },
            Shape::WeeklyDiurnal {
                base,
                amplitude,
                weekend_scale,
                ..
            } => Shape::WeeklyDiurnal {
                base,
                amplitude,
                phase: new_phase,
                weekend_scale,
            },
            Shape::Square {
                low,
                high,
                period,
                duty,
                ..
            } => Shape::Square {
                low,
                high,
                period,
                duty,
                phase: new_phase,
            },
            other => other,
        }
    }
}

/// First-order autoregressive noise added to the shape.
///
/// `x(k+1) = rho·x(k) + sigma·√(1−rho²)·ε`, giving stationary standard
/// deviation `sigma` and correlation time `−step/ln(rho)`. This reproduces
/// the minutes-scale burstiness of real utilization traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ar1Noise {
    /// Correlation coefficient per step, in `[0, 1)`.
    pub rho: f64,
    /// Stationary standard deviation of the noise.
    pub sigma: f64,
}

/// Poisson-arrival flash spikes layered on the shape.
///
/// Each spike adds `magnitude` to the demand fraction for an
/// exponentially-distributed duration. When `correlated` is set, fleet
/// generation draws ONE window set per VM class and applies it to every
/// VM — the flash-crowd regime where an entire service surges at once,
/// which is what makes host wake-up latency matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeProcess {
    /// Mean spike arrivals per 24 h.
    pub rate_per_day: f64,
    /// Added demand fraction while the spike is active.
    pub magnitude: f64,
    /// Mean spike duration.
    pub mean_duration: SimDuration,
    /// Whether all VMs of a class share the same spike windows.
    pub correlated: bool,
}

/// A complete demand process: shape + optional noise + optional spikes.
///
/// # Example
///
/// ```
/// use simcore::{RngStream, SimDuration};
/// use workload::{DemandProcess, Shape};
///
/// let p = DemandProcess::new(Shape::constant(0.3)).with_noise(0.8, 0.1);
/// let trace = p.generate(SimDuration::from_hours(1), SimDuration::from_mins(1), &mut RngStream::new(1));
/// assert_eq!(trace.len(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandProcess {
    shape: Shape,
    noise: Option<Ar1Noise>,
    spikes: Option<SpikeProcess>,
}

impl DemandProcess {
    /// A process with only the deterministic shape.
    pub fn new(shape: Shape) -> Self {
        DemandProcess {
            shape,
            noise: None,
            spikes: None,
        }
    }

    /// Adds AR(1) noise.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1)` or `sigma` is negative.
    pub fn with_noise(mut self, rho: f64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&rho), "rho {rho} outside [0,1)");
        assert!(sigma >= 0.0, "negative sigma {sigma}");
        self.noise = Some(Ar1Noise { rho, sigma });
        self
    }

    /// Adds a per-VM (uncorrelated) flash-spike process.
    ///
    /// # Panics
    ///
    /// Panics if the rate or magnitude is negative, or the mean duration
    /// is zero.
    pub fn with_spikes(
        mut self,
        rate_per_day: f64,
        magnitude: f64,
        mean_duration: SimDuration,
    ) -> Self {
        assert!(
            rate_per_day >= 0.0 && magnitude >= 0.0,
            "negative spike params"
        );
        assert!(!mean_duration.is_zero(), "zero spike duration");
        self.spikes = Some(SpikeProcess {
            rate_per_day,
            magnitude,
            mean_duration,
            correlated: false,
        });
        self
    }

    /// Adds a fleet-correlated flash-spike process: every VM of the class
    /// spikes in the same windows (the flash-crowd regime).
    ///
    /// # Panics
    ///
    /// Panics if the rate or magnitude is negative, or the mean duration
    /// is zero.
    pub fn with_fleet_spikes(
        mut self,
        rate_per_day: f64,
        magnitude: f64,
        mean_duration: SimDuration,
    ) -> Self {
        self = self.with_spikes(rate_per_day, magnitude, mean_duration);
        if let Some(s) = &mut self.spikes {
            s.correlated = true;
        }
        self
    }

    /// The spike process, if any.
    pub fn spikes(&self) -> Option<&SpikeProcess> {
        self.spikes.as_ref()
    }

    /// The deterministic shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// A copy with the shape's phase replaced.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.shape = self.shape.with_phase(phase);
        self
    }

    /// A copy with `delta` added to the shape's phase (mod 1). Fleet
    /// generation uses small deltas to de-synchronize VMs without
    /// destroying the fleet-wide diurnal alignment.
    pub fn with_phase_jitter(mut self, delta: f64) -> Self {
        let base = match self.shape {
            Shape::Diurnal { phase, .. }
            | Shape::Square { phase, .. }
            | Shape::WeeklyDiurnal { phase, .. } => phase,
            _ => return self,
        };
        self.shape = self.shape.with_phase((base + delta).rem_euclid(1.0));
        self
    }

    /// Samples the process into a trace of `horizon / step` samples.
    ///
    /// Deterministic for a given `rng` state; each VM should use its own
    /// substream.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `horizon < step`.
    pub fn generate(
        &self,
        horizon: SimDuration,
        step: SimDuration,
        rng: &mut RngStream,
    ) -> DemandTrace {
        // Pre-draw spike windows over the horizon.
        let spike_windows = self.draw_spike_windows(horizon, rng);
        self.generate_with_spike_windows(horizon, step, rng, &spike_windows)
    }

    /// Samples the process using externally-supplied spike windows instead
    /// of drawing its own — how fleet generation applies one shared window
    /// set to every VM of a correlated class.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `horizon < step`.
    pub fn generate_with_spike_windows(
        &self,
        horizon: SimDuration,
        step: SimDuration,
        rng: &mut RngStream,
        spike_windows: &[(SimTime, SimTime)],
    ) -> DemandTrace {
        assert!(!step.is_zero(), "step must be non-zero");
        let n = horizon.div_ceil(step);
        assert!(n > 0, "horizon shorter than one step");

        let mut samples = Vec::with_capacity(n as usize);
        let mut ar = 0.0f64;
        for k in 0..n {
            let t = SimTime::ZERO + step * k;
            let mut v = self.shape.value_at(t);
            if let Some(noise) = self.noise {
                ar = noise.rho * ar
                    + noise.sigma * (1.0 - noise.rho * noise.rho).sqrt() * rng.standard_normal();
                v += ar;
            }
            if let Some(sp) = self.spikes {
                let in_spike = spike_windows
                    .iter()
                    .any(|&(start, end)| t >= start && t < end);
                if in_spike {
                    v += sp.magnitude;
                }
            }
            samples.push(v.clamp(0.0, 1.0));
        }
        DemandTrace::from_samples(step, samples)
    }

    /// Draws the Poisson spike windows for one horizon. Fleet generation
    /// calls this once per correlated class.
    pub fn draw_spike_windows(
        &self,
        horizon: SimDuration,
        rng: &mut RngStream,
    ) -> Vec<(SimTime, SimTime)> {
        let Some(sp) = self.spikes else {
            return Vec::new();
        };
        if sp.rate_per_day == 0.0 {
            return Vec::new();
        }
        let mut windows = Vec::new();
        let rate_per_sec = sp.rate_per_day / 86_400.0;
        let mut t = 0.0f64;
        let end = horizon.as_secs_f64();
        loop {
            t += rng.exponential(rate_per_sec);
            if t >= end {
                break;
            }
            let dur = rng.exponential(1.0 / sp.mean_duration.as_secs_f64());
            let start = SimTime::ZERO + SimDuration::from_secs_f64(t);
            let stop = start + SimDuration::from_secs_f64(dur);
            windows.push((start, stop));
        }
        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_shape_is_flat() {
        let s = Shape::constant(0.4);
        assert_eq!(s.value_at(SimTime::ZERO), 0.4);
        assert_eq!(s.value_at(SimTime::from_secs(1_000_000)), 0.4);
    }

    #[test]
    fn diurnal_peaks_at_quarter_period() {
        let s = Shape::diurnal(0.5, 0.3);
        let quarter = SimTime::from_secs(6 * 3600);
        assert!((s.value_at(quarter) - 0.8).abs() < 1e-9);
        let three_quarter = SimTime::from_secs(18 * 3600);
        assert!((s.value_at(three_quarter) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn diurnal_phase_shifts() {
        let s = Shape::diurnal(0.5, 0.3).with_phase(0.25);
        assert!((s.value_at(SimTime::ZERO) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn weekly_diurnal_damps_weekends() {
        let s = Shape::WeeklyDiurnal {
            base: 0.4,
            amplitude: 0.2,
            phase: 0.0,
            weekend_scale: 0.4,
        };
        // Same time of day, weekday (day 0) vs weekend (day 5).
        let weekday = s.value_at(SimTime::from_secs(6 * 3600));
        let weekend = s.value_at(SimTime::from_secs((5 * 24 + 6) * 3600));
        assert!((weekday - 0.6).abs() < 1e-9);
        assert!((weekend - 0.24).abs() < 1e-9);
        // Day 7 wraps back to a weekday.
        let next_week = s.value_at(SimTime::from_secs((7 * 24 + 6) * 3600));
        assert!((next_week - weekday).abs() < 1e-9);
    }

    #[test]
    fn step_switches_at_time() {
        let s = Shape::Step {
            low: 0.1,
            high: 0.9,
            at: SimDuration::from_mins(30),
        };
        assert_eq!(s.value_at(SimTime::from_secs(1799)), 0.1);
        assert_eq!(s.value_at(SimTime::from_secs(1800)), 0.9);
    }

    #[test]
    fn square_wave_duty_cycle() {
        let s = Shape::Square {
            low: 0.0,
            high: 1.0,
            period: SimDuration::from_hours(1),
            duty: 0.25,
            phase: 0.0,
        };
        assert_eq!(s.value_at(SimTime::from_secs(10)), 1.0);
        assert_eq!(s.value_at(SimTime::from_secs(1000)), 0.0);
        // Next period.
        assert_eq!(s.value_at(SimTime::from_secs(3700)), 1.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DemandProcess::new(Shape::diurnal(0.4, 0.2)).with_noise(0.9, 0.08);
        let a = p.generate(
            SimDuration::from_hours(4),
            SimDuration::from_mins(5),
            &mut RngStream::new(3),
        );
        let b = p.generate(
            SimDuration::from_hours(4),
            SimDuration::from_mins(5),
            &mut RngStream::new(3),
        );
        assert_eq!(a, b);
        let c = p.generate(
            SimDuration::from_hours(4),
            SimDuration::from_mins(5),
            &mut RngStream::new(4),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn noise_perturbs_but_tracks_shape() {
        let p = DemandProcess::new(Shape::constant(0.5)).with_noise(0.8, 0.05);
        let t = p.generate(
            SimDuration::from_hours(24),
            SimDuration::from_mins(1),
            &mut RngStream::new(9),
        );
        assert!((t.mean() - 0.5).abs() < 0.05, "mean {}", t.mean());
        // And it actually varies.
        assert!(t.peak() - t.trough() > 0.05);
    }

    #[test]
    fn spikes_raise_peak() {
        let base = DemandProcess::new(Shape::constant(0.2));
        let spiky = base.with_spikes(24.0, 0.6, SimDuration::from_mins(20));
        let t_base = base.generate(
            SimDuration::from_hours(24),
            SimDuration::from_mins(1),
            &mut RngStream::new(5),
        );
        let t_spiky = spiky.generate(
            SimDuration::from_hours(24),
            SimDuration::from_mins(1),
            &mut RngStream::new(5),
        );
        assert_eq!(t_base.peak(), 0.2);
        assert!(t_spiky.peak() > 0.7, "peak {}", t_spiky.peak());
        assert!(t_spiky.mean() > t_base.mean());
    }

    #[test]
    fn samples_always_clamped() {
        let p = DemandProcess::new(Shape::diurnal(0.6, 0.4)).with_noise(0.5, 0.5);
        let t = p.generate(
            SimDuration::from_hours(24),
            SimDuration::from_mins(1),
            &mut RngStream::new(11),
        );
        for &s in t.samples() {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "diurnal peak exceeds")]
    fn diurnal_rejects_overflow() {
        Shape::diurnal(0.8, 0.4);
    }
}
