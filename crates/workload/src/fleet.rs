//! VM fleet generation: classes of VMs mixed by weight.

use cluster::{Resources, ServiceClass, VmSpec};
use simcore::{RngStream, SimDuration};

use crate::{DemandProcess, DemandTrace, LifetimePlan};

/// A class of VMs sharing a resource footprint and demand process.
///
/// Fleet generation de-synchronizes individual VMs of a class by jittering
/// the demand shape's phase and giving each VM its own noise stream.
#[derive(Debug, Clone, PartialEq)]
pub struct VmClass {
    name: String,
    resources: Resources,
    process: DemandProcess,
    weight: f64,
    /// Whether to randomize the shape phase per VM (true for interactive
    /// classes; false for stimulus shapes like steps that must stay
    /// aligned across the fleet).
    jitter_phase: bool,
    service_class: ServiceClass,
}

impl VmClass {
    /// Creates a class.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(
        name: impl Into<String>,
        resources: Resources,
        process: DemandProcess,
        weight: f64,
    ) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight}");
        VmClass {
            name: name.into(),
            resources,
            process,
            weight,
            jitter_phase: true,
            service_class: ServiceClass::Interactive,
        }
    }

    /// Marks this class as batch (throughput-oriented): its VMs absorb
    /// overload and disruption before interactive VMs do.
    pub fn batch(mut self) -> Self {
        self.service_class = ServiceClass::Batch;
        self
    }

    /// Disables per-VM phase jitter (for aligned stimuli such as the
    /// flash-crowd step in the responsiveness experiment).
    pub fn aligned(mut self) -> Self {
        self.jitter_phase = false;
        self
    }

    /// Class name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-VM resources.
    pub fn resources(&self) -> Resources {
        self.resources
    }

    /// The class demand process.
    pub fn process(&self) -> &DemandProcess {
        &self.process
    }

    /// Mixing weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

/// A specification for generating a VM fleet.
///
/// # Example
///
/// ```
/// use cluster::Resources;
/// use simcore::SimDuration;
/// use workload::{DemandProcess, FleetSpec, Shape, VmClass};
///
/// let spec = FleetSpec::new(vec![VmClass::new(
///     "web",
///     Resources::new(2.0, 8.0),
///     DemandProcess::new(Shape::diurnal(0.4, 0.3)),
///     1.0,
/// )]);
/// let fleet = spec.generate(100, SimDuration::from_hours(24), SimDuration::from_mins(5), 42);
/// assert_eq!(fleet.vm_specs().len(), 100);
/// assert_eq!(fleet.traces().len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    classes: Vec<VmClass>,
}

impl FleetSpec {
    /// Creates a spec from its classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or all weights are zero.
    pub fn new(classes: Vec<VmClass>) -> Self {
        assert!(!classes.is_empty(), "fleet needs at least one class");
        assert!(
            classes.iter().any(|c| c.weight > 0.0),
            "at least one class needs positive weight"
        );
        FleetSpec { classes }
    }

    /// The classes.
    pub fn classes(&self) -> &[VmClass] {
        &self.classes
    }

    /// Generates `count` VMs with demand traces over `horizon` sampled at
    /// `step`, deterministically from `seed`.
    pub fn generate(
        &self,
        count: usize,
        horizon: SimDuration,
        step: SimDuration,
        seed: u64,
    ) -> Fleet {
        let root = RngStream::new(seed);
        let mut pick_rng = root.substream(0);
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();

        // Correlated-spike classes share one window set across all their
        // VMs (a flash crowd hits the whole service at once).
        let class_windows: Vec<Option<Vec<_>>> = self
            .classes
            .iter()
            .enumerate()
            .map(|(ci, class)| {
                class.process.spikes().filter(|s| s.correlated).map(|_| {
                    let mut class_rng = root.substream(1_000_000 + ci as u64);
                    class.process.draw_spike_windows(horizon, &mut class_rng)
                })
            })
            .collect();

        let mut vm_specs = Vec::with_capacity(count);
        let mut traces = Vec::with_capacity(count);
        let mut class_of = Vec::with_capacity(count);
        for i in 0..count {
            let ci = pick_rng.weighted_index(&weights);
            let class = &self.classes[ci];
            let mut vm_rng = root.substream(1 + i as u64);
            // Jitter each VM's phase by up to ±45 min of a 24 h cycle so
            // VMs de-synchronize without flattening the fleet-wide swing.
            let process = if class.jitter_phase {
                class.process.with_phase_jitter(vm_rng.uniform(-0.03, 0.03))
            } else {
                class.process
            };
            vm_specs.push(VmSpec::new(class.resources).with_class(class.service_class));
            traces.push(match &class_windows[ci] {
                Some(windows) => {
                    process.generate_with_spike_windows(horizon, step, &mut vm_rng, windows)
                }
                None => process.generate(horizon, step, &mut vm_rng),
            });
            class_of.push(ci);
        }
        let n = vm_specs.len();
        Fleet {
            vm_specs,
            traces,
            class_of,
            class_names: self.classes.iter().map(|c| c.name.clone()).collect(),
            lifetimes: LifetimePlan::all_permanent(n),
        }
    }
}

/// A generated fleet: VM specs plus per-VM demand traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    vm_specs: Vec<VmSpec>,
    traces: Vec<DemandTrace>,
    class_of: Vec<usize>,
    class_names: Vec<String>,
    lifetimes: LifetimePlan,
}

impl Fleet {
    /// Builds a fleet directly from specs and traces (for hand-crafted
    /// scenarios).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors' lengths differ.
    pub fn from_parts(vm_specs: Vec<VmSpec>, traces: Vec<DemandTrace>) -> Self {
        assert_eq!(vm_specs.len(), traces.len(), "specs/traces length mismatch");
        let n = vm_specs.len();
        Fleet {
            vm_specs,
            traces,
            class_of: vec![0; n],
            class_names: vec!["custom".to_string()],
            lifetimes: LifetimePlan::all_permanent(n),
        }
    }

    /// Attaches a lifecycle plan (default: every VM permanent).
    ///
    /// # Panics
    ///
    /// Panics if the plan's length differs from the fleet's.
    pub fn with_lifetime_plan(mut self, plan: LifetimePlan) -> Self {
        assert_eq!(plan.len(), self.vm_specs.len(), "plan length mismatch");
        self.lifetimes = plan;
        self
    }

    /// The lifecycle plan.
    pub fn lifetimes(&self) -> &LifetimePlan {
        &self.lifetimes
    }

    /// The VM specifications, indexed by `VmId::index()`.
    pub fn vm_specs(&self) -> &[VmSpec] {
        &self.vm_specs
    }

    /// The demand traces, indexed by `VmId::index()`.
    pub fn traces(&self) -> &[DemandTrace] {
        &self.traces
    }

    /// Class name of VM `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn class_name(&self, i: usize) -> &str {
        &self.class_names[self.class_of[i]]
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vm_specs.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.vm_specs.is_empty()
    }

    /// Aggregate demand in cores at trace sample `k` (each VM's demand
    /// fraction times its CPU cap).
    pub fn aggregate_demand_cores(&self, k: usize) -> f64 {
        self.vm_specs
            .iter()
            .zip(&self.traces)
            .map(|(spec, t)| t.sample(k.min(t.len() - 1)) * spec.cpu_cap_cores())
            .sum()
    }

    /// Sum of all VM CPU caps, in cores.
    pub fn total_cpu_cap_cores(&self) -> f64 {
        self.vm_specs.iter().map(|s| s.cpu_cap_cores()).sum()
    }

    /// Sum of all VM memory footprints, in GB.
    pub fn total_mem_gb(&self) -> f64 {
        self.vm_specs.iter().map(|s| s.mem_gb()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn spec() -> FleetSpec {
        FleetSpec::new(vec![
            VmClass::new(
                "web",
                Resources::new(2.0, 8.0),
                DemandProcess::new(Shape::diurnal(0.4, 0.3)).with_noise(0.9, 0.05),
                0.7,
            ),
            VmClass::new(
                "batch",
                Resources::new(4.0, 16.0),
                DemandProcess::new(Shape::Square {
                    low: 0.05,
                    high: 0.8,
                    period: SimDuration::from_hours(24),
                    duty: 0.3,
                    phase: 0.5,
                }),
                0.3,
            ),
        ])
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec();
        let a = s.generate(50, SimDuration::from_hours(6), SimDuration::from_mins(5), 1);
        let b = s.generate(50, SimDuration::from_hours(6), SimDuration::from_mins(5), 1);
        assert_eq!(a, b);
        let c = s.generate(50, SimDuration::from_hours(6), SimDuration::from_mins(5), 2);
        assert_ne!(a, c);
    }

    #[test]
    fn class_mix_roughly_matches_weights() {
        let s = spec();
        let fleet = s.generate(
            1000,
            SimDuration::from_hours(1),
            SimDuration::from_mins(5),
            7,
        );
        let web = (0..fleet.len())
            .filter(|&i| fleet.class_name(i) == "web")
            .count();
        assert!((600..800).contains(&web), "web count {web}");
    }

    #[test]
    fn phases_are_jittered() {
        let s = FleetSpec::new(vec![VmClass::new(
            "web",
            Resources::new(2.0, 8.0),
            DemandProcess::new(Shape::diurnal(0.4, 0.3)),
            1.0,
        )]);
        let fleet = s.generate(
            10,
            SimDuration::from_hours(24),
            SimDuration::from_mins(30),
            3,
        );
        // Without jitter all traces would be identical; with it they differ.
        let first = &fleet.traces()[0];
        assert!(fleet.traces().iter().any(|t| t != first));
    }

    #[test]
    fn aligned_class_stays_synchronized() {
        let s = FleetSpec::new(vec![VmClass::new(
            "stimulus",
            Resources::new(1.0, 4.0),
            DemandProcess::new(Shape::Step {
                low: 0.2,
                high: 0.9,
                at: SimDuration::from_hours(1),
            }),
            1.0,
        )
        .aligned()]);
        let fleet = s.generate(5, SimDuration::from_hours(2), SimDuration::from_mins(5), 3);
        let first = &fleet.traces()[0];
        assert!(fleet.traces().iter().all(|t| t == first));
    }

    #[test]
    fn aggregates() {
        let s = spec();
        let fleet = s.generate(20, SimDuration::from_hours(1), SimDuration::from_mins(5), 9);
        assert!(fleet.total_cpu_cap_cores() >= 20.0 * 2.0);
        assert!(fleet.total_mem_gb() >= 20.0 * 8.0);
        let agg = fleet.aggregate_demand_cores(0);
        assert!(agg > 0.0 && agg <= fleet.total_cpu_cap_cores());
    }

    #[test]
    fn from_parts_round_trips() {
        let vms = vec![VmSpec::new(Resources::new(1.0, 2.0))];
        let traces = vec![DemandTrace::from_samples(
            SimDuration::from_mins(1),
            vec![0.5],
        )];
        let fleet = Fleet::from_parts(vms, traces);
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.class_name(0), "custom");
    }
}
