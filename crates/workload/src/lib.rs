//! Workload substrate for the `agilepm` workspace.
//!
//! The ISCA'13 paper evaluates on enterprise demand traces whose defining
//! statistical features are a strong diurnal swing, short-term burstiness,
//! and occasional flash spikes. This crate generates reproducible synthetic
//! equivalents:
//!
//! * [`Shape`] — the deterministic demand component (constant, diurnal
//!   sinusoid, step, square wave).
//! * [`Ar1Noise`] / [`SpikeProcess`] — stochastic modifiers: correlated
//!   AR(1) noise and Poisson-arrival flash crowds.
//! * [`DemandProcess`] — shape + noise + spikes, sampled into a
//!   [`DemandTrace`] with a seeded RNG stream.
//! * [`VmClass`] / [`FleetSpec`] — VM population generation: classes with
//!   resource footprints and demand processes, mixed by weight.
//! * [`presets`] — the canonical fleets used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use simcore::{RngStream, SimDuration};
//! use workload::{DemandProcess, Shape};
//!
//! let process = DemandProcess::new(Shape::diurnal(0.4, 0.3)).with_noise(0.9, 0.05);
//! let mut rng = RngStream::new(7);
//! let trace = process.generate(SimDuration::from_hours(24), SimDuration::from_mins(5), &mut rng);
//! assert_eq!(trace.len(), 288);
//! assert!(trace.mean() > 0.2 && trace.mean() < 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demand;
mod fleet;
pub mod io;
mod lifetime;
pub mod presets;
mod stats;
mod trace;

pub use demand::{Ar1Noise, DemandProcess, Shape, SpikeProcess};
pub use fleet::{Fleet, FleetSpec, VmClass};
pub use lifetime::{Lifetime, LifetimePlan};
pub use stats::TraceStats;
pub use trace::DemandTrace;
