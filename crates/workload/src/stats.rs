//! Summary statistics of demand traces.
//!
//! When substituting synthetic demand for the paper's production traces —
//! or importing your own via [`crate::io`] — these are the numbers to
//! compare: mean level, peak-to-mean ratio (burstiness), the p95 the
//! capacity planner would size to, and the lag-1 autocorrelation that
//! tells a predictor how much signal there is.

use crate::DemandTrace;

/// Descriptive statistics of one demand trace.
///
/// # Example
///
/// ```
/// use simcore::{RngStream, SimDuration};
/// use workload::{DemandProcess, Shape, TraceStats};
///
/// let trace = DemandProcess::new(Shape::diurnal(0.4, 0.3))
///     .with_noise(0.9, 0.05)
///     .generate(SimDuration::from_hours(24), SimDuration::from_mins(5), &mut RngStream::new(1));
/// let stats = TraceStats::of(&trace);
/// assert!((stats.mean - 0.4).abs() < 0.1);
/// assert!(stats.autocorr_lag1 > 0.8, "diurnal + AR(1) is highly correlated");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Arithmetic mean demand fraction.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Largest sample.
    pub peak: f64,
    /// Peak over mean (1.0 = perfectly flat; 0 mean maps to 1.0).
    pub peak_to_mean: f64,
    /// 95th-percentile sample — what a capacity planner sizes to.
    pub p95: f64,
    /// Lag-1 autocorrelation (0 for traces shorter than 3 samples or
    /// with zero variance).
    pub autocorr_lag1: f64,
}

impl TraceStats {
    /// Computes the statistics of `trace`.
    pub fn of(trace: &DemandTrace) -> Self {
        let xs = trace.samples();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let std_dev = var.sqrt();
        let peak = trace.peak();
        let p95 = simcore::percentile(xs, 95.0).expect("trace is non-empty");

        let autocorr_lag1 = if xs.len() >= 3 && var > 1e-12 {
            let cov: f64 = xs
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / (n - 1.0);
            cov / var
        } else {
            0.0
        };

        TraceStats {
            mean,
            std_dev,
            peak,
            peak_to_mean: if mean > 0.0 { peak / mean } else { 1.0 },
            p95,
            autocorr_lag1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandProcess, Shape};
    use simcore::{RngStream, SimDuration};

    fn trace_of(samples: Vec<f64>) -> DemandTrace {
        DemandTrace::from_samples(SimDuration::from_mins(5), samples)
    }

    #[test]
    fn flat_trace_stats() {
        let s = TraceStats::of(&trace_of(vec![0.5; 20]));
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.peak_to_mean, 1.0);
        assert_eq!(s.p95, 0.5);
        assert_eq!(s.autocorr_lag1, 0.0); // zero variance
    }

    #[test]
    fn alternating_trace_is_anticorrelated() {
        let samples: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        let s = TraceStats::of(&trace_of(samples));
        assert!(s.autocorr_lag1 < -0.9, "lag-1 {}", s.autocorr_lag1);
        assert!((s.mean - 0.5).abs() < 1e-9);
    }

    #[test]
    fn smooth_trace_is_correlated() {
        let t = DemandProcess::new(Shape::diurnal(0.4, 0.3)).generate(
            SimDuration::from_hours(24),
            SimDuration::from_mins(5),
            &mut RngStream::new(1),
        );
        let s = TraceStats::of(&t);
        assert!(s.autocorr_lag1 > 0.95);
        assert!(s.peak_to_mean > 1.5);
    }

    #[test]
    fn zero_trace_peak_to_mean_defined() {
        let s = TraceStats::of(&trace_of(vec![0.0; 5]));
        assert_eq!(s.peak_to_mean, 1.0);
    }

    #[test]
    fn noise_raises_std_dev_not_mean() {
        let base = DemandProcess::new(Shape::constant(0.5));
        let noisy = base.with_noise(0.8, 0.1);
        let t0 = base.generate(
            SimDuration::from_hours(12),
            SimDuration::from_mins(5),
            &mut RngStream::new(2),
        );
        let t1 = noisy.generate(
            SimDuration::from_hours(12),
            SimDuration::from_mins(5),
            &mut RngStream::new(2),
        );
        let (s0, s1) = (TraceStats::of(&t0), TraceStats::of(&t1));
        assert!(s1.std_dev > s0.std_dev + 0.05);
        assert!((s1.mean - s0.mean).abs() < 0.05);
    }
}
