//! Importing and exporting demand traces as CSV.
//!
//! The synthetic generator stands in for the production traces the paper
//! evaluated on; a user who *has* real utilization traces should feed
//! them in directly. The format is deliberately minimal: one demand
//! fraction (`0.0..=1.0`) per line, in time order at a fixed step;
//! blank lines and `#` comments are ignored.

use std::error::Error;
use std::fmt;

use simcore::SimDuration;

use crate::DemandTrace;

/// Errors from [`parse_trace_csv`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// A line did not parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A sample was outside `[0, 1]`.
    OutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: f64,
    },
    /// The file contained no samples.
    Empty,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadNumber { line, text } => {
                write!(f, "line {line}: `{text}` is not a number")
            }
            ParseTraceError::OutOfRange { line, value } => {
                write!(f, "line {line}: sample {value} outside [0, 1]")
            }
            ParseTraceError::Empty => write!(f, "trace file contains no samples"),
        }
    }
}

impl Error for ParseTraceError {}

/// Parses a demand trace from CSV text (one sample per line).
///
/// # Errors
///
/// Returns [`ParseTraceError`] naming the first offending line.
///
/// # Example
///
/// ```
/// use simcore::SimDuration;
/// use workload::io::parse_trace_csv;
///
/// let trace = parse_trace_csv("# web server cpu\n0.2\n0.5\n0.8\n", SimDuration::from_mins(5))?;
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.samples()[1], 0.5);
/// # Ok::<(), workload::io::ParseTraceError>(())
/// ```
pub fn parse_trace_csv(text: &str, step: SimDuration) -> Result<DemandTrace, ParseTraceError> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: f64 = trimmed.parse().map_err(|_| ParseTraceError::BadNumber {
            line,
            text: trimmed.to_string(),
        })?;
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(ParseTraceError::OutOfRange { line, value });
        }
        samples.push(value);
    }
    if samples.is_empty() {
        return Err(ParseTraceError::Empty);
    }
    Ok(DemandTrace::from_samples(step, samples))
}

/// Serializes a trace back to the CSV format accepted by
/// [`parse_trace_csv`] (round-trip safe).
pub fn write_trace_csv(trace: &DemandTrace) -> String {
    let mut out = format!(
        "# demand trace: {} samples at {} step\n",
        trace.len(),
        trace.step()
    );
    for &s in trace.samples() {
        out.push_str(&format!("{s}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_comments_and_blanks() {
        let t = parse_trace_csv("# hdr\n\n0.1\n  0.9  \n", SimDuration::from_mins(1)).unwrap();
        assert_eq!(t.samples(), &[0.1, 0.9]);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let e = parse_trace_csv("0.1\nnope\n", SimDuration::from_mins(1)).unwrap_err();
        assert_eq!(
            e,
            ParseTraceError::BadNumber {
                line: 2,
                text: "nope".to_string()
            }
        );
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_out_of_range() {
        let e = parse_trace_csv("1.5\n", SimDuration::from_mins(1)).unwrap_err();
        assert!(matches!(e, ParseTraceError::OutOfRange { line: 1, .. }));
        let e = parse_trace_csv("NaN\n", SimDuration::from_mins(1)).unwrap_err();
        assert!(matches!(e, ParseTraceError::OutOfRange { .. }));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            parse_trace_csv("# only comments\n", SimDuration::from_mins(1)).unwrap_err(),
            ParseTraceError::Empty
        );
    }

    #[test]
    fn round_trips() {
        let original =
            DemandTrace::from_samples(SimDuration::from_mins(5), vec![0.0, 0.25, 0.5, 1.0]);
        let csv = write_trace_csv(&original);
        let parsed = parse_trace_csv(&csv, SimDuration::from_mins(5)).unwrap();
        assert_eq!(parsed, original);
    }
}
