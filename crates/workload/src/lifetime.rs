//! VM lifecycle: arrivals and departures.
//!
//! Enterprise fleets are not static — VMs are provisioned and retired
//! continuously, and the abstract's premise is that virtualization's easy
//! allocate/deallocate/migrate controls are what make dynamic power
//! management possible at all. This module models that churn: each VM has
//! an active window `[arrival, departure)`; outside it the VM does not
//! exist (no demand, no memory footprint).

use simcore::{RngStream, SimDuration, SimTime};

/// One VM's active window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// When the VM is provisioned (0 = present from the start).
    pub arrival: SimTime,
    /// When the VM is retired, if within the simulated horizon.
    pub departure: Option<SimTime>,
}

impl Lifetime {
    /// A VM present for the whole simulation.
    pub const PERMANENT: Lifetime = Lifetime {
        arrival: SimTime::ZERO,
        departure: None,
    };

    /// Whether the VM is active at `t`.
    pub fn is_active(&self, t: SimTime) -> bool {
        t >= self.arrival && self.departure.is_none_or(|d| t < d)
    }
}

impl Default for Lifetime {
    fn default() -> Self {
        Lifetime::PERMANENT
    }
}

/// Per-fleet lifecycle plan.
///
/// # Example
///
/// ```
/// use simcore::SimDuration;
/// use workload::LifetimePlan;
///
/// let plan = LifetimePlan::with_churn(
///     100,
///     0.3,                            // 30% of VMs are transient
///     SimDuration::from_hours(4),     // mean transient lifetime
///     SimDuration::from_hours(24),
///     7,
/// );
/// assert_eq!(plan.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimePlan {
    lifetimes: Vec<Lifetime>,
}

impl LifetimePlan {
    /// Every VM permanent (the static-fleet default).
    pub fn all_permanent(count: usize) -> Self {
        LifetimePlan {
            lifetimes: vec![Lifetime::PERMANENT; count],
        }
    }

    /// Wraps explicit lifetimes.
    pub fn from_lifetimes(lifetimes: Vec<Lifetime>) -> Self {
        LifetimePlan { lifetimes }
    }

    /// Marks a seeded `churn_frac` of the fleet as transient: such VMs
    /// arrive uniformly over the horizon and live an exponentially
    /// distributed time (mean `mean_lifetime`, floor 10 min). The rest
    /// are permanent.
    ///
    /// # Panics
    ///
    /// Panics if `churn_frac` is outside `[0, 1]` or `mean_lifetime` is
    /// zero.
    pub fn with_churn(
        count: usize,
        churn_frac: f64,
        mean_lifetime: SimDuration,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&churn_frac),
            "churn fraction {churn_frac} outside [0,1]"
        );
        assert!(!mean_lifetime.is_zero(), "mean lifetime must be non-zero");
        let mut rng = RngStream::new(seed).substream(0xC0FFEE);
        let lifetimes = (0..count)
            .map(|_| {
                if !rng.chance(churn_frac) {
                    return Lifetime::PERMANENT;
                }
                let arrival = SimTime::ZERO
                    + SimDuration::from_secs_f64(rng.uniform(0.0, horizon.as_secs_f64()));
                let life = rng
                    .exponential(1.0 / mean_lifetime.as_secs_f64())
                    .max(600.0);
                Lifetime {
                    arrival,
                    departure: Some(arrival + SimDuration::from_secs_f64(life)),
                }
            })
            .collect();
        LifetimePlan { lifetimes }
    }

    /// Number of VMs covered.
    pub fn len(&self) -> usize {
        self.lifetimes.len()
    }

    /// Whether the plan covers no VMs.
    pub fn is_empty(&self) -> bool {
        self.lifetimes.is_empty()
    }

    /// The lifetimes, indexed by `VmId::index()`.
    pub fn lifetimes(&self) -> &[Lifetime] {
        &self.lifetimes
    }

    /// Number of VMs active at `t`.
    pub fn active_at(&self, t: SimTime) -> usize {
        self.lifetimes.iter().filter(|l| l.is_active(t)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanent_is_always_active() {
        let l = Lifetime::PERMANENT;
        assert!(l.is_active(SimTime::ZERO));
        assert!(l.is_active(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn window_bounds_are_half_open() {
        let l = Lifetime {
            arrival: SimTime::from_secs(100),
            departure: Some(SimTime::from_secs(200)),
        };
        assert!(!l.is_active(SimTime::from_secs(99)));
        assert!(l.is_active(SimTime::from_secs(100)));
        assert!(l.is_active(SimTime::from_secs(199)));
        assert!(!l.is_active(SimTime::from_secs(200)));
    }

    #[test]
    fn churn_fraction_roughly_respected() {
        let plan = LifetimePlan::with_churn(
            1000,
            0.3,
            SimDuration::from_hours(4),
            SimDuration::from_hours(24),
            9,
        );
        let transient = plan
            .lifetimes()
            .iter()
            .filter(|l| l.departure.is_some())
            .count();
        assert!((200..400).contains(&transient), "transient {transient}");
    }

    #[test]
    fn churn_is_deterministic() {
        let a = LifetimePlan::with_churn(
            50,
            0.5,
            SimDuration::from_hours(2),
            SimDuration::from_hours(12),
            3,
        );
        let b = LifetimePlan::with_churn(
            50,
            0.5,
            SimDuration::from_hours(2),
            SimDuration::from_hours(12),
            3,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn lifetimes_have_floor() {
        let plan = LifetimePlan::with_churn(
            200,
            1.0,
            SimDuration::from_secs(1), // absurdly short mean
            SimDuration::from_hours(24),
            5,
        );
        for l in plan.lifetimes() {
            let d = l.departure.expect("all transient");
            assert!(d.since(l.arrival) >= SimDuration::from_mins(10));
        }
    }

    #[test]
    fn active_count_varies_over_time() {
        let plan = LifetimePlan::with_churn(
            300,
            0.5,
            SimDuration::from_hours(2),
            SimDuration::from_hours(24),
            11,
        );
        let at_start = plan.active_at(SimTime::ZERO);
        let mid = plan.active_at(SimTime::from_secs(12 * 3600));
        // Permanent VMs (~150) active at start; transients trickle in.
        assert!(at_start < 300);
        assert!(mid >= at_start.min(mid)); // sanity; counts move
        assert_eq!(LifetimePlan::all_permanent(10).active_at(SimTime::ZERO), 10);
    }
}
