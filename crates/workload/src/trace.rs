//! Sampled demand traces.

use simcore::{SimDuration, SimTime};

/// A VM's demand over time, sampled at a fixed step, as a fraction of the
/// VM's CPU cap in `[0, 1]`.
///
/// The trace is a step function: sample `i` holds on
/// `[i·step, (i+1)·step)`; the last sample holds forever after (simulations
/// never read past their horizon in practice).
///
/// # Example
///
/// ```
/// use simcore::{SimDuration, SimTime};
/// use workload::DemandTrace;
///
/// let t = DemandTrace::from_samples(SimDuration::from_mins(5), vec![0.2, 0.8]);
/// assert_eq!(t.at(SimTime::ZERO), 0.2);
/// assert_eq!(t.at(SimTime::from_secs(299)), 0.2);
/// assert_eq!(t.at(SimTime::from_secs(300)), 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTrace {
    step: SimDuration,
    samples: Vec<f64>,
}

impl DemandTrace {
    /// Wraps pre-computed samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, `step` is zero, or any sample is
    /// outside `[0, 1]`.
    pub fn from_samples(step: SimDuration, samples: Vec<f64>) -> Self {
        assert!(!step.is_zero(), "step must be non-zero");
        assert!(!samples.is_empty(), "trace needs at least one sample");
        for &s in &samples {
            assert!(
                s.is_finite() && (0.0..=1.0).contains(&s),
                "sample {s} outside [0,1]"
            );
        }
        DemandTrace { step, samples }
    }

    /// The sampling step.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace has no samples (never true for a constructed
    /// trace; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Demand fraction in effect at `t`.
    pub fn at(&self, t: SimTime) -> f64 {
        let idx = (t.as_millis() / self.step.as_millis()) as usize;
        self.samples[idx.min(self.samples.len() - 1)]
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample.
    pub fn peak(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest sample.
    pub fn trough(&self) -> f64 {
        self.samples.iter().copied().fold(1.0, f64::min)
    }

    /// The trace's total span (`len × step`).
    pub fn span(&self) -> SimDuration {
        self.step * self.samples.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_indexes_steps_and_clamps_past_end() {
        let t = DemandTrace::from_samples(SimDuration::from_secs(10), vec![0.1, 0.2, 0.3]);
        assert_eq!(t.at(SimTime::ZERO), 0.1);
        assert_eq!(t.at(SimTime::from_secs(10)), 0.2);
        assert_eq!(t.at(SimTime::from_secs(29)), 0.3);
        assert_eq!(t.at(SimTime::from_secs(1000)), 0.3);
    }

    #[test]
    fn summary_statistics() {
        let t = DemandTrace::from_samples(SimDuration::from_secs(1), vec![0.0, 0.5, 1.0]);
        assert!((t.mean() - 0.5).abs() < 1e-12);
        assert_eq!(t.peak(), 1.0);
        assert_eq!(t.trough(), 0.0);
        assert_eq!(t.span(), SimDuration::from_secs(3));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_out_of_range_samples() {
        DemandTrace::from_samples(SimDuration::from_secs(1), vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty() {
        DemandTrace::from_samples(SimDuration::from_secs(1), vec![]);
    }
}
