//! Sampled demand traces.

use simcore::{SimDuration, SimTime};

/// Denominator of the quantized representation: samples are stored as
/// `round(s * 65535)` in a `u16`, giving ~1.5e-5 resolution over `[0, 1]`
/// at a quarter of the dense footprint.
const QUANT_SCALE: f64 = u16::MAX as f64;

/// Backing storage of a [`DemandTrace`].
///
/// Dense `f64` samples are the default; large fleets can opt into the
/// quantized form, which stores each sample in 2 bytes instead of 8.
#[derive(Debug, Clone, PartialEq)]
enum Storage {
    /// One `f64` per sample, exactly as constructed.
    Dense(Vec<f64>),
    /// One `u16` per sample, fixed-point over `[0, 1]`.
    Quantized(Vec<u16>),
}

impl Storage {
    fn len(&self) -> usize {
        match self {
            Storage::Dense(v) => v.len(),
            Storage::Quantized(v) => v.len(),
        }
    }

    fn get(&self, k: usize) -> f64 {
        match self {
            Storage::Dense(v) => v[k],
            Storage::Quantized(v) => v[k] as f64 / QUANT_SCALE,
        }
    }
}

/// A VM's demand over time, sampled at a fixed step, as a fraction of the
/// VM's CPU cap in `[0, 1]`.
///
/// The trace is a step function: sample `i` holds on
/// `[i·step, (i+1)·step)`; the last sample holds forever after (simulations
/// never read past their horizon in practice).
///
/// Samples are stored dense (`f64`) by default;
/// [`quantized`](Self::quantized) converts to a 2-byte fixed-point form
/// for large fleets where trace memory dominates.
///
/// # Example
///
/// ```
/// use simcore::{SimDuration, SimTime};
/// use workload::DemandTrace;
///
/// let t = DemandTrace::from_samples(SimDuration::from_mins(5), vec![0.2, 0.8]);
/// assert_eq!(t.at(SimTime::ZERO), 0.2);
/// assert_eq!(t.at(SimTime::from_secs(299)), 0.2);
/// assert_eq!(t.at(SimTime::from_secs(300)), 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTrace {
    step: SimDuration,
    storage: Storage,
}

impl DemandTrace {
    /// Wraps pre-computed samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, `step` is zero, or any sample is
    /// outside `[0, 1]`.
    pub fn from_samples(step: SimDuration, samples: Vec<f64>) -> Self {
        assert!(!step.is_zero(), "step must be non-zero");
        assert!(!samples.is_empty(), "trace needs at least one sample");
        for &s in &samples {
            assert!(
                s.is_finite() && (0.0..=1.0).contains(&s),
                "sample {s} outside [0,1]"
            );
        }
        DemandTrace {
            step,
            storage: Storage::Dense(samples),
        }
    }

    /// Converts the trace to the compact fixed-point representation
    /// (2 bytes per sample, ~1.5e-5 worst-case rounding error). A no-op
    /// on an already-quantized trace.
    ///
    /// Quantizing is lossy: do it once at construction, before any
    /// simulation reads the trace, so every run sees the same values.
    pub fn quantized(self) -> Self {
        let storage = match self.storage {
            Storage::Dense(v) => Storage::Quantized(
                v.into_iter()
                    .map(|s| (s * QUANT_SCALE).round() as u16)
                    .collect(),
            ),
            q @ Storage::Quantized(_) => q,
        };
        DemandTrace {
            step: self.step,
            storage,
        }
    }

    /// Whether the trace uses the compact fixed-point representation.
    pub fn is_quantized(&self) -> bool {
        matches!(self.storage, Storage::Quantized(_))
    }

    /// The sampling step.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// Whether the trace has no samples (never true for a constructed
    /// trace; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.storage.len() == 0
    }

    /// The raw samples.
    ///
    /// # Panics
    ///
    /// Panics if the trace is [`quantized`](Self::quantized) — the dense
    /// slice no longer exists. Use [`sample`](Self::sample) for
    /// representation-independent access.
    pub fn samples(&self) -> &[f64] {
        match &self.storage {
            Storage::Dense(v) => v,
            Storage::Quantized(_) => {
                panic!("samples() on a quantized trace; use sample(k) instead")
            }
        }
    }

    /// Sample `k`, decoded if quantized.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn sample(&self, k: usize) -> f64 {
        self.storage.get(k)
    }

    /// Demand fraction in effect at `t`. An empty trace reads as zero
    /// demand.
    pub fn at(&self, t: SimTime) -> f64 {
        let n = self.storage.len();
        if n == 0 {
            return 0.0;
        }
        let idx = (t.as_millis() / self.step.as_millis()) as usize;
        self.storage.get(idx.min(n - 1))
    }

    /// Arithmetic mean of the samples (zero for an empty trace).
    pub fn mean(&self) -> f64 {
        let n = self.storage.len();
        if n == 0 {
            return 0.0;
        }
        (0..n).map(|k| self.storage.get(k)).sum::<f64>() / n as f64
    }

    /// Largest sample.
    pub fn peak(&self) -> f64 {
        (0..self.storage.len())
            .map(|k| self.storage.get(k))
            .fold(0.0, f64::max)
    }

    /// Smallest sample (zero for an empty trace).
    pub fn trough(&self) -> f64 {
        let min = (0..self.storage.len())
            .map(|k| self.storage.get(k))
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// The trace's total span (`len × step`).
    pub fn span(&self) -> SimDuration {
        self.step * self.storage.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_indexes_steps_and_clamps_past_end() {
        let t = DemandTrace::from_samples(SimDuration::from_secs(10), vec![0.1, 0.2, 0.3]);
        assert_eq!(t.at(SimTime::ZERO), 0.1);
        assert_eq!(t.at(SimTime::from_secs(10)), 0.2);
        assert_eq!(t.at(SimTime::from_secs(29)), 0.3);
        assert_eq!(t.at(SimTime::from_secs(1000)), 0.3);
    }

    #[test]
    fn summary_statistics() {
        let t = DemandTrace::from_samples(SimDuration::from_secs(1), vec![0.0, 0.5, 1.0]);
        assert!((t.mean() - 0.5).abs() < 1e-12);
        assert_eq!(t.peak(), 1.0);
        assert_eq!(t.trough(), 0.0);
        assert_eq!(t.span(), SimDuration::from_secs(3));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn trough_is_smallest_sample_not_capped_at_one() {
        // Regression: a fold seeded with 1.0 hid troughs above 1.0's
        // complement — with all samples at 0.9 the trough is 0.9, and the
        // seed must not drag it down to 1.0's old cap either way.
        let t = DemandTrace::from_samples(SimDuration::from_secs(1), vec![0.9, 0.95]);
        assert_eq!(t.trough(), 0.9);
    }

    #[test]
    fn empty_trace_reads_as_zero() {
        // from_samples rejects empties; build one directly to pin the
        // defensive behaviour of the accessors.
        let t = DemandTrace {
            step: SimDuration::from_secs(1),
            storage: Storage::Dense(Vec::new()),
        };
        assert!(t.is_empty());
        assert_eq!(t.at(SimTime::ZERO), 0.0);
        assert_eq!(t.at(SimTime::from_secs(1000)), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.trough(), 0.0);
        assert_eq!(t.peak(), 0.0);
    }

    #[test]
    fn quantized_round_trip_within_resolution() {
        let samples = vec![0.0, 0.123_456, 0.5, 0.999_9, 1.0];
        let dense = DemandTrace::from_samples(SimDuration::from_secs(10), samples.clone());
        let q = dense.clone().quantized();
        assert!(q.is_quantized());
        assert!(!dense.is_quantized());
        assert_eq!(q.len(), dense.len());
        assert_eq!(q.step(), dense.step());
        assert_eq!(q.span(), dense.span());
        for (k, &s) in samples.iter().enumerate() {
            assert!(
                (q.sample(k) - s).abs() <= 0.5 / QUANT_SCALE + 1e-12,
                "sample {k}: {} vs {s}",
                q.sample(k)
            );
        }
        // Exact endpoints survive quantization exactly.
        assert_eq!(q.sample(0), 0.0);
        assert_eq!(q.sample(4), 1.0);
        // at() dispatches through the quantized storage.
        assert_eq!(q.at(SimTime::from_secs(25)), q.sample(2));
        // Quantizing twice is a no-op.
        let q2 = q.clone().quantized();
        assert_eq!(q2, q);
    }

    #[test]
    #[should_panic(expected = "use sample(k) instead")]
    fn samples_panics_on_quantized() {
        let t = DemandTrace::from_samples(SimDuration::from_secs(1), vec![0.1, 0.2]).quantized();
        let _ = t.samples();
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_out_of_range_samples() {
        DemandTrace::from_samples(SimDuration::from_secs(1), vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty() {
        DemandTrace::from_samples(SimDuration::from_secs(1), vec![]);
    }
}
