//! Model-check of the planner's utilization-bucket index: arbitrary
//! update sequences (insert / remove / re-score / touch-with-drift,
//! mirroring what placements, drains, quarantines, and in-round trial
//! moves do to a host) are applied both to a [`UtilizationIndex`] and to
//! a naive membership/utilization/free-memory model, then the index is
//! audited against a from-scratch recomputation:
//!
//! * every member host sits in exactly one bucket, every non-member in
//!   none (the "operational hosts are indexed exactly once" invariant);
//! * every *untouched* member sits in precisely the bucket its current
//!   utilization quantizes to — touched hosts are the overlay and are
//!   exempt until folded;
//! * no untouched member's free memory exceeds its bucket's raise-only
//!   free-memory upper bound — the soundness condition that makes the
//!   walks' memory prune lossless (a stale-*high* bound is fine, a
//!   too-low one would skip a feasible destination);
//! * folding the overlay (re-scoring every touched host, as the
//!   per-round refresh does) restores full bucket accuracy;
//! * a fresh index rebuilt from the model's final state agrees with the
//!   incrementally-maintained one bucket-for-bucket.
//!
//! A second property pins the fixed-shape capacity aggregate: a
//! [`SumTree`] under arbitrary point updates must stay bitwise equal to
//! [`pairwise_sum`] recomputed from scratch — that equality is what lets
//! the indexed planner reuse scan's exact floating-point totals.

use agile_core::{pairwise_sum, SumTree, UtilizationIndex};
use check::gen;

/// One scripted index operation. Utilization arrives in permille so
/// counterexamples shrink to readable integers; values above 1000
/// exercise the over-committed (util > 1) clamp range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Make the host a member (placement / un-quarantine); no-op if it
    /// already is one.
    Insert,
    /// Remove the host (power-down / quarantine); no-op if absent.
    Remove,
    /// Change the host's utilization and re-bucket it immediately.
    Rescore,
    /// Change the host's utilization but only mark it touched — the
    /// in-round trial-move path, which defers re-bucketing to the fold.
    TouchDrift,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Step {
    op: Op,
    host: usize,
    util_permille: u64,
    /// Free memory in tenths of a GB (0..=32.0 GB), so migrations that
    /// commit and release memory between re-scores are exercised.
    mem_tenths: u64,
}

fn steps(num_hosts: usize) -> gen::Gen<Vec<Step>> {
    let step = gen::one_of(vec![Op::Insert, Op::Remove, Op::Rescore, Op::TouchDrift])
        .zip(&gen::usize_in(0..=num_hosts - 1))
        .zip(&gen::u64_in(0..=2500))
        .zip(&gen::u64_in(0..=320))
        .map(|(((op, host), util_permille), mem_tenths)| Step {
            op,
            host,
            util_permille,
            mem_tenths,
        });
    gen::vec_of(&step, 0..=120)
}

/// Replays `script` against the index and the naive model, returning the
/// model's final state: membership, utilization, and free memory.
fn replay(
    index: &mut UtilizationIndex,
    num_hosts: usize,
    script: &[Step],
) -> (Vec<bool>, Vec<f64>, Vec<f64>) {
    index.ensure_hosts(num_hosts);
    let mut member = vec![false; num_hosts];
    let mut utils = vec![0.0f64; num_hosts];
    let mut mem = vec![0.0f64; num_hosts];
    for s in script {
        let util = s.util_permille as f64 / 1000.0;
        let mem_free = s.mem_tenths as f64 / 10.0;
        match s.op {
            Op::Insert => {
                if !member[s.host] {
                    index.insert(s.host, util, mem_free);
                    member[s.host] = true;
                    utils[s.host] = util;
                    mem[s.host] = mem_free;
                }
            }
            Op::Remove => {
                if member[s.host] {
                    index.remove(s.host);
                    member[s.host] = false;
                }
            }
            Op::Rescore => {
                if member[s.host] {
                    index.rescore(s.host, util, mem_free);
                    utils[s.host] = util;
                    mem[s.host] = mem_free;
                }
            }
            Op::TouchDrift => {
                if member[s.host] {
                    index.touch(s.host);
                    utils[s.host] = util;
                    mem[s.host] = mem_free;
                }
            }
        }
    }
    (member, utils, mem)
}

#[test]
fn index_matches_naive_oracle_after_arbitrary_update_sequences() {
    let input = gen::usize_in(1..=24).and_then(|n| steps(n).map(move |s| (n, s)));
    check::check("bucket index == naive oracle", &input, |(n, script)| {
        let mut index = UtilizationIndex::new();
        let (member, utils, mem) = replay(&mut index, *n, script);

        // Membership + accuracy + memory-bound audit against the model,
        // with touched hosts exempt (they are the overlay).
        index
            .check_membership(&member, &utils, &mem)
            .map_err(|e| format!("{n} hosts, {script:?}: {e}"))?;

        // A from-scratch index over the model's final state must agree
        // bucket-for-bucket once the overlay is folded.
        for &h in &index.touched_hosts().to_vec() {
            let h = h as usize;
            if index.is_indexed(h) {
                index.rescore(h, utils[h], mem[h]);
            }
        }
        index.clear_touched();
        let mut fresh = UtilizationIndex::new();
        fresh.ensure_hosts(*n);
        for h in 0..*n {
            if member[h] {
                fresh.insert(h, utils[h], mem[h]);
            }
        }
        for b in 0..UtilizationIndex::num_buckets() {
            check::prop_assert_eq!(
                index.bucket_hosts(b),
                fresh.bucket_hosts(b),
                "bucket {b} diverged from the from-scratch rebuild"
            );
            // The incremental bound may sit above the fresh one (it is
            // raise-only between refreshes) but never below it: the
            // fresh bound is the exact per-bucket maximum free memory,
            // and soundness demands the maintained bound covers it.
            check::prop_assert!(
                index.bucket_mem_ub(b) >= fresh.bucket_mem_ub(b),
                "bucket {b} memory bound {} fell below the exact maximum {}",
                index.bucket_mem_ub(b),
                fresh.bucket_mem_ub(b)
            );
        }
        index
            .check_membership(&member, &utils, &mem)
            .map_err(|e| format!("post-fold: {e}"))
    });
}

#[test]
fn sum_tree_stays_bitwise_equal_to_pairwise_recomputation() {
    let input = gen::usize_in(0..=33).and_then(|n| {
        let update = gen::usize_in(0..=n.max(1) - 1).zip(&gen::u64_in(0..=1_000_000));
        gen::vec_of(&update, 0..=60).map(move |ups| (n, ups))
    });
    check::check("SumTree == pairwise_sum", &input, |(n, updates)| {
        let mut leaves = vec![0.0f64; *n];
        let mut tree = SumTree::new();
        tree.rebuild(*n, |i| leaves[i]);
        for &(i, raw) in updates {
            if *n == 0 {
                break;
            }
            // Values with awkward mantissas so any re-association of the
            // reduction order shows up as a bit difference.
            let v = raw as f64 / 3.0 + (raw as f64).sqrt();
            leaves[i] = v;
            tree.set(i, v);
        }
        let reference = pairwise_sum(*n, |i| leaves[i]);
        check::prop_assert_eq!(
            tree.root().to_bits(),
            reference.to_bits(),
            "tree root {} != pairwise reference {}",
            tree.root(),
            reference
        );
        for (i, leaf) in leaves.iter().enumerate().take(*n) {
            check::prop_assert_eq!(tree.leaf(i).to_bits(), leaf.to_bits());
        }
        Ok(())
    });
}
