//! The invariant catalog: what must hold after *every* simulated run.
//!
//! Each check takes the artifacts of a finished run and returns
//! `Err(description)` on violation, so the catalog composes directly
//! with `check` properties. [`check_report`] is the portmanteau most
//! property tests call after each generated run.

use cluster::Cluster;
use dcsim::{EventKind, Scenario, SimReport};
use power::{HostPowerProfile, PowerState};

/// Slack multiplier on the physical power ceiling: transition states may
/// briefly draw above the utilization curve's peak (boot surges), and
/// the sampled peak is a step function.
const POWER_CEILING_SLACK: f64 = 1.25;

/// Tolerance for quantities that are ratios of accumulated floats.
const EPS: f64 = 1e-9;

/// The fleet's physical power ceiling in watts: every host flat out,
/// with transition slack.
fn power_ceiling_w(scenario: &Scenario) -> f64 {
    scenario
        .host_specs()
        .iter()
        .map(|h| h.profile().curve().peak_w())
        .sum::<f64>()
        * POWER_CEILING_SLACK
}

/// Energy and capacity conservation plus report-shape sanity:
///
/// * energy is finite, non-negative, and below the fleet's physical
///   ceiling over the horizon;
/// * sampled peak power respects the same ceiling;
/// * every ratio field lies in `[0, 1]`;
/// * host/VM counts echo the scenario;
/// * the event log (if any) is time-ordered;
/// * the report survives its own JSON round-trip bit-exactly.
pub fn check_report(scenario: &Scenario, report: &SimReport) -> Result<(), String> {
    if !report.energy_j.is_finite() || report.energy_j < 0.0 {
        return Err(format!("energy {} J is not physical", report.energy_j));
    }
    let ceiling_w = power_ceiling_w(scenario);
    let max_energy = ceiling_w * report.horizon.as_secs_f64();
    if report.energy_j > max_energy {
        return Err(format!(
            "energy {} J exceeds the fleet ceiling {} J",
            report.energy_j, max_energy
        ));
    }
    if report.peak_power_w > ceiling_w + EPS {
        return Err(format!(
            "peak power {} W exceeds the fleet ceiling {} W",
            report.peak_power_w, ceiling_w
        ));
    }
    for (name, value) in [
        ("violation_fraction", report.violation_fraction),
        ("unserved_ratio", report.unserved_ratio),
        (
            "unserved_interactive_ratio",
            report.unserved_interactive_ratio,
        ),
        ("unserved_batch_ratio", report.unserved_batch_ratio),
        ("avg_util_on", report.avg_util_on),
    ] {
        if !value.is_finite() || !(-EPS..=1.0 + EPS).contains(&value) {
            return Err(format!("{name} = {value} outside [0, 1]"));
        }
    }
    if report.avg_hosts_on < -EPS || report.avg_hosts_on > report.num_hosts as f64 + EPS {
        return Err(format!(
            "avg_hosts_on {} outside [0, {}]",
            report.avg_hosts_on, report.num_hosts
        ));
    }
    if report.num_hosts != scenario.host_specs().len() {
        return Err(format!(
            "report says {} hosts, scenario has {}",
            report.num_hosts,
            scenario.host_specs().len()
        ));
    }
    if report.num_vms != scenario.fleet().len() {
        return Err(format!(
            "report says {} VMs, scenario has {}",
            report.num_vms,
            scenario.fleet().len()
        ));
    }
    check_event_log(report)?;
    check_work_counters(report)?;
    check_commit_ledger(report)?;
    check_json_round_trip(report)
}

/// The deterministic op-counters must be internally consistent: every
/// trial evacuation scans at least one candidate first, a rollback
/// implies an attempt, and every planned migration is accounted for as
/// either executed or aborted by the cluster — no third fate.
pub fn check_work_counters(report: &SimReport) -> Result<(), String> {
    let c = |name: &str| report.metrics.counter(name);
    let candidates = c("work.plan.candidates_scanned");
    let trials = c("work.plan.trials_attempted");
    let rolled_back = c("work.plan.trials_rolled_back");
    let planned = c("work.plan.migrations_planned");
    let executed = c("work.migrations.executed");
    let aborted = c("work.migrations.aborted");
    if trials > candidates {
        return Err(format!(
            "{trials} trial evacuations but only {candidates} candidates scanned"
        ));
    }
    if rolled_back > trials {
        return Err(format!(
            "{rolled_back} rollbacks but only {trials} trials attempted"
        ));
    }
    // A planned migration has exactly four fates: the cluster executed
    // or aborted it, or the commit layer refused it (conflict), dropped
    // it (not the planner's partition), or expired it (control latency
    // outlived the horizon). Under the direct (single-planner) path the
    // commit terms are all zero and this is the classic two-fate ledger.
    let commit_migrations = c("work.commit.migrations_rejected")
        + c("work.commit.migrations_dropped")
        + c("work.commit.migrations_expired");
    if planned != executed + aborted + commit_migrations {
        return Err(format!(
            "{planned} migrations planned but {executed} executed + {aborted} aborted \
             + {commit_migrations} refused at commit"
        ));
    }
    // Index maintenance must be change-driven: a host is only re-bucketed
    // because something dirtied cluster state, so cumulative re-buckets
    // can never outrun the cluster's dirty marks (which charge one mark
    // per operational host per demand sweep). Each scheduler in a
    // distributed control plane maintains its own index, so the bound
    // scales with the planner count (`work.commit.schedulers`, 1 on the
    // direct path). Trivially true in scan mode, where every
    // `work.index.*` counter stays zero.
    let rebuckets = c("work.index.rebuckets");
    let schedulers = c("work.commit.schedulers").max(1);
    let dirty = c("work.cluster.dirty_marks") * schedulers;
    if rebuckets > dirty {
        return Err(format!(
            "{rebuckets} index re-buckets but only {dirty} cluster dirty marks \
             across {schedulers} scheduler(s)"
        ));
    }
    Ok(())
}

/// The placement store's commit ledger must balance exactly:
///
/// * every planned action has exactly one fate —
///   `planned == accepted + rejected + dropped_unowned + expired`;
/// * the per-reason rejection breakdown sums to the rejected total;
/// * per-kind migration sub-counters never exceed their parents;
/// * the engine-level `sim.commits.rejected` event counter agrees with
///   the store's `work.commit.rejected`, and when the audit log was
///   recorded, so does the number of `CommitRejected` entries.
///
/// Trivially true (all zeros) on runs without a control plane.
pub fn check_commit_ledger(report: &SimReport) -> Result<(), String> {
    let c = |name: &str| report.metrics.counter(name);
    let planned = c("work.commit.planned");
    let accepted = c("work.commit.accepted");
    let rejected = c("work.commit.rejected");
    let dropped = c("work.commit.dropped_unowned");
    let expired = c("work.commit.expired");
    if planned != accepted + rejected + dropped + expired {
        return Err(format!(
            "commit ledger out of balance: {planned} planned != {accepted} accepted \
             + {rejected} rejected + {dropped} dropped + {expired} expired"
        ));
    }
    let by_reason: u64 = [
        "work.commit.rejected_vm_busy",
        "work.commit.rejected_vm_race",
        "work.commit.rejected_not_owner",
        "work.commit.rejected_dest_unavailable",
        "work.commit.rejected_headroom",
        "work.commit.rejected_power_clash",
        "work.commit.rejected_power_stale",
    ]
    .iter()
    .map(|name| c(name))
    .sum();
    if by_reason != rejected {
        return Err(format!(
            "rejection reasons sum to {by_reason} but {rejected} commits were rejected"
        ));
    }
    for (kind, parent_name, parent) in [
        ("work.commit.migrations_rejected", "rejected", rejected),
        ("work.commit.migrations_dropped", "dropped", dropped),
        ("work.commit.migrations_expired", "expired", expired),
    ] {
        let sub = c(kind);
        if sub > parent {
            return Err(format!(
                "{sub} {kind} but only {parent} commits {parent_name} in total"
            ));
        }
    }
    let engine_rejections = c("sim.commits.rejected");
    if engine_rejections != rejected {
        return Err(format!(
            "engine logged {engine_rejections} commit rejections but the store counted {rejected}"
        ));
    }
    if !report.events.is_empty() {
        let logged = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CommitRejected { .. }))
            .count() as u64;
        if logged != rejected {
            return Err(format!(
                "{logged} CommitRejected events but the store counted {rejected}"
            ));
        }
    }
    Ok(())
}

/// No VM is ever placed twice: the event log may never show a VM in two
/// concurrent live migrations, a migration ending without a start, or a
/// transient VM provisioned again while already running — the races the
/// placement store exists to arbitrate away when several schedulers plan
/// over the same fleet. Vacuous when no events were recorded.
pub fn check_no_vm_double_placed(report: &SimReport) -> Result<(), String> {
    let mut migrating = std::collections::BTreeSet::new();
    let mut resident = std::collections::BTreeSet::new();
    for e in &report.events {
        let fresh = match e.kind {
            EventKind::MigrationStarted { vm, .. } => migrating.insert(vm),
            EventKind::MigrationCompleted { vm } | EventKind::MigrationFailed { vm } => {
                migrating.remove(&vm)
            }
            EventKind::VmArrived { vm, .. } => resident.insert(vm),
            EventKind::VmDeparted { vm } => {
                resident.remove(&vm);
                true
            }
            _ => true,
        };
        if !fresh {
            return Err(match e.kind {
                EventKind::MigrationStarted { vm, .. } => {
                    format!("{vm:?} entered two concurrent migrations")
                }
                EventKind::MigrationCompleted { vm } | EventKind::MigrationFailed { vm } => {
                    format!("{vm:?} finished a migration that never started")
                }
                EventKind::VmArrived { vm, .. } => {
                    format!("{vm:?} provisioned while already running")
                }
                _ => unreachable!("only placement events can fail the freshness check"),
            });
        }
    }
    Ok(())
}

/// The audit log must be time-ordered, and when events were recorded the
/// fault ledger must be *exact*: `PowerFailed`, `MigrationFailed`,
/// `PowerStuck`, and `VmArrivalRejected` entries must each agree with
/// their report counter, and no VM may be both admitted and rejected
/// (the silent-drop class of bug).
pub fn check_event_log(report: &SimReport) -> Result<(), String> {
    for pair in report.events.windows(2) {
        if pair[1].time < pair[0].time {
            return Err(format!(
                "event log goes backwards: {} after {}",
                pair[1], pair[0]
            ));
        }
    }
    if !report.events.is_empty() {
        let mut failed = 0u64;
        let mut migrations_failed = 0u64;
        let mut stuck = 0u64;
        let mut rejected = 0u64;
        for e in &report.events {
            match e.kind {
                EventKind::PowerFailed { .. } => failed += 1,
                EventKind::MigrationFailed { .. } => migrations_failed += 1,
                EventKind::PowerStuck { .. } => stuck += 1,
                EventKind::VmArrivalRejected { .. } => rejected += 1,
                _ => {}
            }
        }
        for (name, events, counter) in [
            ("transition_failures", failed, report.transition_failures),
            (
                "migration_failures",
                migrations_failed,
                report.migration_failures,
            ),
            ("hung_transitions", stuck, report.hung_transitions),
            ("rejected_admissions", rejected, report.rejected_admissions),
        ] {
            if events != counter {
                return Err(format!(
                    "{events} {name} events but the report counter says {counter}"
                ));
            }
        }
        check_no_vm_lost(report)?;
        check_no_vm_double_placed(report)?;
    }
    Ok(())
}

/// No VM is silently lost at admission: a VM either arrives or is
/// rejected, never both — and a rejected VM must make no further
/// lifecycle appearance (it was turned away, not dropped mid-life).
pub fn check_no_vm_lost(report: &SimReport) -> Result<(), String> {
    let mut arrived = std::collections::BTreeSet::new();
    let mut rejected = std::collections::BTreeSet::new();
    for e in &report.events {
        match e.kind {
            EventKind::VmArrived { vm, .. } => {
                if rejected.contains(&vm) {
                    return Err(format!("{vm:?} arrived after being rejected"));
                }
                arrived.insert(vm);
            }
            EventKind::VmArrivalRejected { vm } => {
                if arrived.contains(&vm) {
                    return Err(format!("{vm:?} rejected after arriving"));
                }
                if !rejected.insert(vm) {
                    return Err(format!("{vm:?} rejected twice"));
                }
            }
            EventKind::VmDeparted { vm } | EventKind::MigrationStarted { vm, .. }
                if rejected.contains(&vm) =>
            {
                return Err(format!("rejected {vm:?} re-appeared in the lifecycle"));
            }
            _ => {}
        }
    }
    Ok(())
}

/// `to_json` → text → parse → `from_json` must reproduce the report
/// bit-exactly (the serialization layer may not lose precision).
pub fn check_json_round_trip(report: &SimReport) -> Result<(), String> {
    let text = report.to_json().to_string_compact();
    let parsed = obs::Json::parse(&text).map_err(|e| format!("report JSON unparsable: {e:?}"))?;
    let round_tripped =
        SimReport::from_json(&parsed).map_err(|e| format!("report JSON undecodable: {e:?}"))?;
    if &round_tripped != report {
        return Err("report changed across its JSON round-trip".to_string());
    }
    Ok(())
}

/// Placement sanity on a finished cluster: a host that is not
/// operational can hold no VMs (the manager must evacuate before
/// parking, and a parked host can never receive a placement).
pub fn check_cluster(cluster: &Cluster) -> Result<(), String> {
    for host in cluster.hosts() {
        if !host.is_operational() {
            let stranded = cluster.vms_on(host.id());
            if !stranded.is_empty() {
                return Err(format!(
                    "host {:?} is {} but holds {} VMs",
                    host.id(),
                    host.power_state(),
                    stranded.len()
                ));
            }
        }
    }
    Ok(())
}

/// Power-state ladder monotonicity: walking a profile's supported rungs
/// shallow→deep, each deeper rung must rest at strictly lower power and
/// wake no faster than the rung above it — otherwise the deeper rung is
/// never the right choice and the "ladder" is mislabeled. Vacuously true
/// for profiles with at most one rung.
///
/// This is a property of *calibrated* profiles, not a constructor error:
/// sweep tooling legitimately builds non-monotone tables (e.g. the F7
/// wake-latency sweep shrinks resume latency below the park latency), so
/// the check is applied to the presets and to generated ladder worlds
/// rather than enforced at construction.
pub fn check_ladder_monotonic(profile: &HostPowerProfile) -> Result<(), String> {
    let ladder = profile.ladder();
    for pair in ladder.windows(2) {
        let (shallow, deep) = (&pair[0], &pair[1]);
        if deep.resting_power_w >= shallow.resting_power_w {
            return Err(format!(
                "{}: rung {} rests at {} W, not below the shallower {} ({} W)",
                profile.name(),
                deep.mode,
                deep.resting_power_w,
                shallow.mode,
                shallow.resting_power_w
            ));
        }
        if deep.wake_latency < shallow.wake_latency {
            return Err(format!(
                "{}: rung {} wakes in {}, faster than the shallower {} ({})",
                profile.name(),
                deep.mode,
                deep.wake_latency,
                shallow.mode,
                shallow.wake_latency
            ));
        }
    }
    Ok(())
}

/// Per-state energy accounting on a finished cluster: every host's
/// by-state energies must be non-negative and sum to its meter total
/// (within float tolerance) — the breakdown may never invent or lose
/// joules relative to the step-function integral.
pub fn check_energy_breakdown(cluster: &Cluster) -> Result<(), String> {
    for host in cluster.hosts() {
        let meter = host.power().meter();
        let total = meter.total_j();
        let mut sum = 0.0;
        for state in PowerState::ALL {
            let j = meter.state_j(state);
            if !j.is_finite() || j < 0.0 {
                return Err(format!("host {:?}: energy in {state} is {j} J", host.id()));
            }
            sum += j;
        }
        let tol = EPS * total.max(1.0);
        if (sum - total).abs() > tol {
            return Err(format!(
                "host {:?}: by-state energy sums to {sum} J but the meter total is {total} J",
                host.id()
            ));
        }
    }
    Ok(())
}

/// The policy ladder: on the same world, the analytic Oracle bound must
/// not exceed a power-managing run, which must not exceed always-on.
/// `tolerance` is a relative slack (e.g. `0.001`) absorbing boundary
/// effects on tiny fleets.
pub fn check_energy_ordering(
    oracle: &SimReport,
    managed: &SimReport,
    always_on: &SimReport,
    tolerance: f64,
) -> Result<(), String> {
    let slack = 1.0 + tolerance;
    if oracle.energy_j > managed.energy_j * slack {
        return Err(format!(
            "Oracle energy {} J exceeds managed {} J",
            oracle.energy_j, managed.energy_j
        ));
    }
    if managed.energy_j > always_on.energy_j * slack {
        return Err(format!(
            "managed energy {} J exceeds always-on {} J",
            managed.energy_j, always_on.energy_j
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_core::PowerPolicy;
    use dcsim::{Experiment, SimulationBuilder};
    use simcore::SimDuration;

    #[test]
    fn catalog_passes_on_a_reference_run() {
        let scenario = Scenario::small_test(3);
        let experiment = Experiment::new(scenario.clone())
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(2))
            .record_events();
        let out = SimulationBuilder::new(experiment)
            .capture_cluster(true)
            .build()
            .and_then(|sim| sim.run())
            .unwrap();
        let cluster = out.cluster.expect("capture_cluster returns the cluster");
        check_report(&scenario, &out.report).unwrap();
        check_cluster(&cluster).unwrap();
    }

    #[test]
    fn catalog_rejects_a_cooked_report() {
        let scenario = Scenario::small_test(3);
        let mut report = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(PowerPolicy::always_on())
                .horizon(SimDuration::from_hours(2)),
        )
        .run_report()
        .unwrap();
        report.unserved_ratio = 1.5; // physically impossible
        let err = check_report(&scenario, &report).unwrap_err();
        assert!(err.contains("unserved_ratio"), "{err}");
    }

    #[test]
    fn ladder_check_orders_the_reference_policies() {
        let scenario = Scenario::datacenter(4, 16, 11);
        let run = |p: PowerPolicy| {
            SimulationBuilder::new(
                Experiment::new(scenario.clone())
                    .policy(p)
                    .horizon(SimDuration::from_hours(24)),
            )
            .run_report()
            .unwrap()
        };
        let oracle = run(PowerPolicy::oracle());
        let managed = run(PowerPolicy::reactive_suspend());
        let base = run(PowerPolicy::always_on());
        check_energy_ordering(&oracle, &managed, &base, 0.001).unwrap();
        // And the check really is a check: a flipped ladder fails.
        assert!(check_energy_ordering(&base, &managed, &oracle, 0.001).is_err());
    }
}
