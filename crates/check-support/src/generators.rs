//! Generators for the simulator's domain objects.
//!
//! Every generator produces a small `Debug`-friendly *spec* value (a
//! [`ScenarioSpec`], not a built [`Scenario`]) so a shrunk
//! counterexample prints as a few readable fields; `build()` turns the
//! spec into the real object deterministically. Specs are sized for
//! property testing — a few hosts, a few dozen VMs, hours not days — so
//! hundreds of generated runs stay fast in debug builds.

use agile_core::{PlanMode, PowerPolicy};
use check::gen::{self, Gen};
use dcsim::{Experiment, FailureModel, Scenario};
use simcore::SimDuration;
use workload::{presets, DemandTrace, FleetSpec};

/// Which workload family a generated scenario draws; shrinks toward the
/// canonical diurnal day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The paper's enterprise diurnal mix.
    Diurnal,
    /// Diurnal with fleet-correlated flash crowds.
    Spiky,
    /// Diurnal with this percentage of transient (churning) VMs.
    Churn {
        /// Percent of the fleet that is transient, in `[10, 60]`.
        transient_pct: u8,
    },
    /// Flat demand at this percentage of VM capacity.
    Steady {
        /// Demand level in percent of capacity, in `[10, 80]`.
        level_pct: u8,
    },
    /// Mixed rack + blade hardware running the diurnal mix.
    Heterogeneous,
    /// The diurnal mix on C6→S3→S5 ladder hardware with DVFS attached.
    Ladder,
}

/// A compact, shrink-friendly description of a simulation world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Host count, in `[2, 8]`.
    pub hosts: usize,
    /// VMs per host, in `[2, 5]`.
    pub vms_per_host: usize,
    /// The workload family.
    pub workload: WorkloadKind,
    /// Generation seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Total VM count.
    pub fn vms(&self) -> usize {
        self.hosts * self.vms_per_host
    }

    /// Builds the described world (deterministic in the spec).
    pub fn build(&self) -> Scenario {
        let (hosts, vms, seed) = (self.hosts, self.vms(), self.seed);
        match self.workload {
            WorkloadKind::Diurnal => Scenario::datacenter(hosts, vms, seed),
            WorkloadKind::Spiky => Scenario::datacenter_spiky(hosts, vms, seed),
            WorkloadKind::Churn { transient_pct } => {
                Scenario::datacenter_churn(hosts, vms, f64::from(transient_pct) / 100.0, seed)
            }
            WorkloadKind::Steady { level_pct } => Scenario::with_workload(
                format!("steady-{level_pct}pct-{hosts}x{vms}"),
                hosts,
                vms,
                presets::steady(f64::from(level_pct) / 100.0),
                SimDuration::from_hours(24),
                seed,
            ),
            WorkloadKind::Heterogeneous => {
                let blades = hosts / 2;
                Scenario::heterogeneous(hosts - blades, blades, vms, seed)
            }
            WorkloadKind::Ladder => Scenario::datacenter_ladder(hosts, vms, seed),
        }
    }
}

/// All workload families; shrinks toward [`WorkloadKind::Diurnal`].
pub fn workload_kind() -> Gen<WorkloadKind> {
    gen::choice(vec![
        gen::constant(WorkloadKind::Diurnal),
        gen::constant(WorkloadKind::Spiky),
        gen::u64_in(10..=60).map(|p| WorkloadKind::Churn {
            transient_pct: p as u8,
        }),
        gen::u64_in(10..=80).map(|p| WorkloadKind::Steady { level_pct: p as u8 }),
        gen::constant(WorkloadKind::Heterogeneous),
        gen::constant(WorkloadKind::Ladder),
    ])
}

/// Arbitrary small worlds: 2–8 hosts, 2–5 VMs per host, any workload
/// family, seeds in `[0, 9999]`.
pub fn scenario_spec() -> Gen<ScenarioSpec> {
    gen::usize_in(2..=8)
        .zip(&gen::usize_in(2..=5))
        .zip(&workload_kind())
        .zip(&gen::u64_in(0..=9999))
        .map(|(((hosts, vms_per_host), workload), seed)| ScenarioSpec {
            hosts,
            vms_per_host,
            workload,
            seed,
        })
}

/// Any runnable policy (the analytic `Oracle` is excluded — it has no
/// event loop to differentiate against); shrinks toward `AlwaysOn`.
pub fn policy() -> Gen<PowerPolicy> {
    gen::one_of(vec![
        PowerPolicy::always_on(),
        PowerPolicy::reactive_suspend(),
        PowerPolicy::reactive_off(),
    ])
}

/// The power-managing policies only (suspend shrinks first).
pub fn managed_policy() -> Gen<PowerPolicy> {
    gen::one_of(vec![
        PowerPolicy::reactive_suspend(),
        PowerPolicy::reactive_off(),
    ])
}

/// Joint-ladder policies across the wake-SLO range that discriminates
/// the rungs: 2 s admits only the C6-class rung, 12 s adds S3, 600 s
/// admits the full ladder. Shrinks toward the tightest SLO.
pub fn ladder_policy() -> Gen<PowerPolicy> {
    gen::one_of(vec![
        PowerPolicy::joint_ladder(SimDuration::from_secs(2)),
        PowerPolicy::joint_ladder(SimDuration::from_secs(12)),
        PowerPolicy::joint_ladder(SimDuration::from_secs(600)),
    ])
}

/// A complete experiment description: scenario, policy, horizon, and
/// control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentSpec {
    /// The world to simulate.
    pub scenario: ScenarioSpec,
    /// The power-management policy.
    pub policy: PowerPolicy,
    /// Simulated horizon in hours, in `[2, 6]`.
    pub horizon_hours: u64,
    /// Control-loop interval in minutes (1 or 5).
    pub control_mins: u64,
}

impl ExperimentSpec {
    /// The configured (not yet run) experiment.
    ///
    /// The planning mode defaults from the `AGILEPM_PLAN_MODE`
    /// environment variable (`scan` or `indexed`; unset means `scan`) so
    /// CI can re-run the whole property suite in indexed mode without a
    /// second copy of every test. An explicit
    /// [`Experiment::plan_mode`](dcsim::Experiment::plan_mode) call
    /// appended by the test overrides the default, which keeps the
    /// indexed-vs-scan differential pair meaningful on every matrix leg.
    ///
    /// Likewise, `AGILEPM_SCHEDULERS` (unset means the classic direct
    /// path) routes every generated run through the distributed control
    /// plane with that many schedulers, clamped to the world's host
    /// count so small shrunk worlds stay buildable.
    pub fn experiment(&self) -> Experiment {
        let mut experiment = self.direct_experiment();
        if let Some(schedulers) = default_schedulers() {
            experiment = experiment.schedulers(schedulers.min(self.scenario.hosts));
        }
        experiment
    }

    /// The same experiment with the `AGILEPM_SCHEDULERS` routing left
    /// off: always the classic direct (global-planner) path. The
    /// control-plane differential uses this as its reference leg so the
    /// comparison stays meaningful on every CI matrix leg.
    pub fn direct_experiment(&self) -> Experiment {
        Experiment::new(self.scenario.build())
            .policy(self.policy)
            .horizon(SimDuration::from_hours(self.horizon_hours))
            .control_interval(SimDuration::from_mins(self.control_mins))
            .plan_mode(default_plan_mode())
    }
}

/// The plan mode selected by `AGILEPM_PLAN_MODE` (`scan`/`indexed`,
/// default [`PlanMode::Scan`]).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo in a CI matrix must fail
/// loudly, not silently test the default mode.
pub fn default_plan_mode() -> PlanMode {
    match std::env::var("AGILEPM_PLAN_MODE") {
        Ok(v) if v.eq_ignore_ascii_case("indexed") => PlanMode::Indexed,
        Ok(v) if v.eq_ignore_ascii_case("scan") => PlanMode::Scan,
        Ok(v) => panic!("AGILEPM_PLAN_MODE must be `scan` or `indexed`, got `{v}`"),
        Err(_) => PlanMode::Scan,
    }
}

/// The scheduler count selected by `AGILEPM_SCHEDULERS`: `None` when
/// unset (the classic direct path), `Some(n)` to route every generated
/// run through the distributed control plane with `n` schedulers.
///
/// # Panics
///
/// Panics on a non-numeric or zero value — a typo in a CI matrix must
/// fail loudly, not silently test the default path.
pub fn default_schedulers() -> Option<usize> {
    match std::env::var("AGILEPM_SCHEDULERS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => panic!("AGILEPM_SCHEDULERS must be a positive integer, got `{v}`"),
        },
        Err(_) => None,
    }
}

/// Scheduler counts for distributed-control-plane properties: the T27
/// ladder `{1, 2, 4, 8}`; shrinks toward the single-scheduler plane.
pub fn scheduler_count() -> Gen<usize> {
    gen::one_of(vec![1usize, 2, 4, 8])
}

/// Arbitrary experiments over [`scenario_spec`] worlds; shrinks toward
/// an always-on 2-hour run on the smallest diurnal world.
pub fn experiment_spec() -> Gen<ExperimentSpec> {
    scenario_spec()
        .zip(&policy())
        .zip(&gen::u64_in(2..=6))
        .zip(&gen::one_of(vec![5u64, 1]))
        .map(
            |(((scenario, policy), horizon_hours), control_mins)| ExperimentSpec {
                scenario,
                policy,
                horizon_hours,
                control_mins,
            },
        )
}

/// Per-transition failure probabilities in permille, so counterexamples
/// print as integers and probabilities stay on an exact grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureSpec {
    /// Resume failure probability, permille.
    pub resume_permille: u16,
    /// Boot failure probability, permille.
    pub boot_permille: u16,
    /// Migration-abort probability, permille.
    pub migration_permille: u16,
    /// Transition-hang probability, permille.
    pub hang_permille: u16,
    /// Hang stretch factor (× nominal latency), in `[2, 8]`; only
    /// meaningful when `hang_permille > 0`.
    pub hang_factor: u8,
    /// Per-epoch per-rack outage-burst probability, permille.
    pub rack_burst_permille: u16,
    /// Hosts per rack for correlated bursts, in `[2, 4]`.
    pub rack_size: u8,
}

impl FailureSpec {
    /// Resume failure probability as a float in `[0, 1)`.
    pub fn resume_prob(&self) -> f64 {
        f64::from(self.resume_permille) / 1000.0
    }

    /// Boot failure probability as a float in `[0, 1)`.
    pub fn boot_prob(&self) -> f64 {
        f64::from(self.boot_permille) / 1000.0
    }

    /// Migration-abort probability as a float in `[0, 1)`.
    pub fn migration_prob(&self) -> f64 {
        f64::from(self.migration_permille) / 1000.0
    }

    /// Transition-hang probability as a float in `[0, 1)`.
    pub fn hang_prob(&self) -> f64 {
        f64::from(self.hang_permille) / 1000.0
    }

    /// Rack-burst probability as a float in `[0, 1)`.
    pub fn rack_burst_prob(&self) -> f64 {
        f64::from(self.rack_burst_permille) / 1000.0
    }

    /// The corresponding [`FailureModel`]. Inactive dimensions (zero
    /// permille) stay off so the zero spec builds an inert model.
    pub fn build(&self) -> FailureModel {
        let mut model = FailureModel::new(self.resume_prob(), self.boot_prob());
        if self.migration_permille > 0 {
            model = model.with_migration_failures(self.migration_prob());
        }
        if self.hang_permille > 0 {
            model = model.with_hangs(self.hang_prob(), f64::from(self.hang_factor));
        }
        if self.rack_burst_permille > 0 {
            model = model.with_rack_bursts(
                usize::from(self.rack_size),
                self.rack_burst_prob(),
                SimDuration::from_mins(30),
            );
        }
        model
    }
}

/// Failure models with every dimension up to `max_permille` (transition
/// and migration failures capped at 499 so hosts and migrations stay
/// recoverable; correlated rack bursts capped at 125 so the fleet is not
/// permanently dark); shrinks toward no failures.
pub fn failure_spec(max_permille: u16) -> Gen<FailureSpec> {
    let cap = u64::from(max_permille.min(499));
    let rack_cap = u64::from(max_permille.min(125));
    gen::u64_in(0..=cap)
        .zip(&gen::u64_in(0..=cap))
        .zip(&gen::u64_in(0..=cap))
        .zip(&gen::u64_in(0..=cap))
        .zip(&gen::u64_in(2..=8))
        .zip(&gen::u64_in(0..=rack_cap))
        .zip(&gen::u64_in(2..=4))
        .map(
            |((((((resume, boot), migration), hang), factor), rack), rack_size)| FailureSpec {
                resume_permille: resume as u16,
                boot_permille: boot as u16,
                migration_permille: migration as u16,
                hang_permille: hang as u16,
                hang_factor: factor as u8,
                rack_burst_permille: rack as u16,
                rack_size: rack_size as u8,
            },
        )
}

/// Dense demand traces: 1–`max_len` samples in `[0, 1]` at a 5-minute
/// step; shrinks toward a single zero sample.
pub fn demand_trace(max_len: usize) -> Gen<DemandTrace> {
    gen::vec_of(&gen::f64_unit(), 1..=max_len.max(1))
        .map(|samples| DemandTrace::from_samples(SimDuration::from_mins(5), samples))
}

/// Which preset fleet mix to draw; shrinks toward the diurnal mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetMix {
    /// Enterprise diurnal web/app/batch.
    Diurnal,
    /// Diurnal plus fleet-correlated spikes.
    Spiky,
    /// Week-long diurnal with damped weekends.
    Weekly,
    /// Flat demand at this percent of capacity.
    Steady {
        /// Demand level in percent, in `[10, 80]`.
        level_pct: u8,
    },
}

impl FleetMix {
    /// The corresponding preset [`FleetSpec`].
    pub fn build(&self) -> FleetSpec {
        match self {
            FleetMix::Diurnal => presets::enterprise_diurnal(),
            FleetMix::Spiky => presets::enterprise_with_spikes(),
            FleetMix::Weekly => presets::enterprise_weekly(),
            FleetMix::Steady { level_pct } => presets::steady(f64::from(*level_pct) / 100.0),
        }
    }
}

/// All preset fleet mixes.
pub fn fleet_mix() -> Gen<FleetMix> {
    gen::choice(vec![
        gen::constant(FleetMix::Diurnal),
        gen::constant(FleetMix::Spiky),
        gen::constant(FleetMix::Weekly),
        gen::u64_in(10..=80).map(|p| FleetMix::Steady { level_pct: p as u8 }),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::Source;

    #[test]
    fn scenario_specs_build_valid_worlds() {
        check::check_cases("generated scenarios build", 12, &scenario_spec(), |spec| {
            let scenario = spec.build();
            check::prop_assert_eq!(scenario.host_specs().len(), spec.hosts);
            check::prop_assert_eq!(scenario.fleet().len(), spec.vms());
            check::prop_assert!(!scenario.name().is_empty(), "unnamed scenario");
            Ok(())
        });
    }

    #[test]
    fn simplest_scenario_is_the_smallest_diurnal_world() {
        // The all-zero choice stream must decode to the minimal world so
        // shrinking converges there.
        let spec = scenario_spec().sample(&mut Source::replay(&[])).unwrap();
        assert_eq!(
            spec,
            ScenarioSpec {
                hosts: 2,
                vms_per_host: 2,
                workload: WorkloadKind::Diurnal,
                seed: 0,
            }
        );
    }

    #[test]
    fn failure_specs_stay_in_the_recoverable_band() {
        check::check("failure probabilities < 0.5", &failure_spec(499), |spec| {
            let model = spec.build();
            check::prop_assert!(model.resume_failure_prob() < 0.5, "resume too failing");
            check::prop_assert!(model.boot_failure_prob() < 0.5, "boot too failing");
            check::prop_assert!(
                model.migration_failure_prob() < 0.5,
                "migrations too failing"
            );
            check::prop_assert!(model.hang_prob() < 0.5, "hangs too frequent");
            check::prop_assert!(model.rack_burst_prob() < 0.5, "bursts too frequent");
            check::prop_assert!(
                model.hang_prob() == 0.0 || model.hang_factor() >= 2.0,
                "hang factor below 2x"
            );
            Ok(())
        });
    }

    #[test]
    fn simplest_failure_spec_is_inert() {
        // The all-zero choice stream must decode to a model that injects
        // nothing, so shrinking converges on the failure-free world.
        let spec = failure_spec(499).sample(&mut Source::replay(&[])).unwrap();
        assert!(!spec.build().is_active());
        assert_eq!(spec.resume_permille, 0);
        assert_eq!(spec.migration_permille, 0);
        assert_eq!(spec.hang_permille, 0);
        assert_eq!(spec.rack_burst_permille, 0);
    }

    #[test]
    fn demand_traces_are_unit_bounded() {
        check::check("trace samples in [0,1]", &demand_trace(32), |trace| {
            check::prop_assert!(!trace.is_empty(), "empty trace");
            for k in 0..trace.len() {
                let s = trace.sample(k);
                check::prop_assert!((0.0..=1.0).contains(&s), "sample {s} out of [0,1]");
            }
            Ok(())
        });
    }

    #[test]
    fn fleet_mixes_generate_fleets() {
        check::check_cases("fleet mixes generate", 8, &fleet_mix(), |mix| {
            let fleet =
                mix.build()
                    .generate(6, SimDuration::from_hours(2), SimDuration::from_mins(5), 7);
            check::prop_assert_eq!(fleet.len(), 6);
            Ok(())
        });
    }
}
