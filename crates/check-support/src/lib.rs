//! Domain generators and the invariant catalog for property-testing the
//! simulator.
//!
//! The [`check`] crate knows nothing about datacenters; this layer does.
//! [`generators`] produces arbitrary (but small and fast) worlds —
//! scenarios, policies, failure models, demand traces, fleet mixes — as
//! shrink-friendly spec values. [`invariants`] is the catalog of
//! properties every finished run must satisfy: energy and capacity
//! conservation, event-log time ordering, placement sanity, JSON
//! round-tripping, and the Oracle ≤ managed ≤ always-on energy ladder.
//!
//! The differential-verification suite (`tests/differential.rs` at the
//! workspace root) combines both: generated scenarios run through the
//! execution paths the codebase promises are equivalent, asserting
//! bit-identical reports and checking the catalog after every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod invariants;

use dcsim::{Experiment, SimError, SimReport, SimulationBuilder};

/// Worker-thread count for property-suite runs: `AGILEPM_SIM_THREADS`
/// when set (CI repeats the differential suite with `4` so every
/// generated scenario also exercises the sharded tick engine), else 1.
pub fn sim_threads() -> usize {
    std::env::var("AGILEPM_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Runs a configured experiment through the [`SimulationBuilder`] with
/// [`sim_threads`] workers. Thread count must be unobservable in the
/// report, so every property holds identically at any setting.
pub fn run_experiment(experiment: Experiment) -> Result<SimReport, SimError> {
    SimulationBuilder::new(experiment)
        .threads(sim_threads())
        .run_report()
}

pub use generators::{
    default_plan_mode, default_schedulers, demand_trace, experiment_spec, failure_spec, fleet_mix,
    ladder_policy, managed_policy, policy, scenario_spec, scheduler_count, workload_kind,
    ExperimentSpec, FailureSpec, FleetMix, ScenarioSpec, WorkloadKind,
};
pub use invariants::{
    check_cluster, check_commit_ledger, check_energy_breakdown, check_energy_ordering,
    check_event_log, check_json_round_trip, check_ladder_monotonic, check_no_vm_double_placed,
    check_report, check_work_counters,
};
