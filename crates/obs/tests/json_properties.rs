//! Generator-driven properties for the JSON layer: arbitrary documents
//! round-trip exactly, serialization is stable, and malformed inputs
//! are rejected with errors — never panics.

use check::gen::{boolean, choice, constant, f64_in, i64_in, one_of, usize_in, vec_of, Gen};
use check::{prop_assert, prop_assert_eq};
use obs::Json;

/// Characters that stress the escaper: quotes, backslashes, control
/// characters, multi-byte unicode, and plain ASCII.
fn char_palette() -> Vec<char> {
    vec![
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '\u{7f}', 'é', '→',
        '🦀', '/',
    ]
}

/// Short strings over the stress palette.
fn json_string() -> Gen<String> {
    vec_of(&one_of(char_palette()), 0..=12).map(|chars| chars.into_iter().collect())
}

/// Scalar JSON values. Non-finite numbers are excluded: the writer
/// (correctly) renders them as `null`, which is lossy by design.
fn json_scalar() -> Gen<Json> {
    choice(vec![
        constant(Json::Null),
        boolean().map(Json::Bool),
        i64_in(i64::MIN..=i64::MAX).map(Json::Int),
        f64_in(-1.0e9, 1.0e9).map(Json::Num),
        json_string().map(Json::Str),
    ])
}

/// Arbitrary JSON documents nested at most `depth` levels deep.
fn json_value(depth: usize) -> Gen<Json> {
    if depth == 0 {
        return json_scalar();
    }
    let inner = json_value(depth - 1);
    choice(vec![
        json_scalar(),
        vec_of(&inner, 0..=4).map(Json::Array),
        vec_of(&json_string().zip(&inner), 0..=4).map(Json::Object),
    ])
}

/// Every generated document survives value → text → value exactly, and
/// a second render produces byte-identical text (stable serialization).
#[test]
fn compact_rendering_round_trips_exactly() {
    check::check("JSON compact round-trip", &json_value(3), |value| {
        let text = value.to_string_compact();
        let parsed = Json::parse(&text).map_err(|e| format!("rendered JSON unparsable: {e}"))?;
        prop_assert_eq!(&parsed, value, "value changed across round-trip");
        prop_assert_eq!(parsed.to_string_compact(), text, "serialization not stable");
        Ok(())
    });
}

/// Pretty rendering parses back to the same value too.
#[test]
fn pretty_rendering_parses_back() {
    check::check("JSON pretty round-trip", &json_value(3), |value| {
        let text = value.to_string_pretty();
        let parsed = Json::parse(&text).map_err(|e| format!("pretty JSON unparsable: {e}"))?;
        prop_assert_eq!(&parsed, value);
        Ok(())
    });
}

/// Truncating a valid document at any char boundary never panics the
/// parser: it returns `Ok` (for a prefix that happens to be complete)
/// or a structured error.
#[test]
fn truncated_documents_never_panic() {
    let input = json_value(3).zip(&usize_in(0..=4096));
    check::check("JSON truncation safe", &input, |(value, cut_raw)| {
        let text = value.to_string_compact();
        let mut cut = cut_raw % (text.len() + 1);
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        // A panic here would fail the property via the harness.
        let _ = Json::parse(&text[..cut]);
        Ok(())
    });
}

/// Replacing one character of a valid document with arbitrary syntax
/// never panics the parser.
#[test]
fn mutated_documents_never_panic() {
    let noise = one_of(vec![
        '{', '}', '[', ']', ',', ':', '"', '\\', 'x', '9', '.', '-',
    ]);
    let input = json_value(3).zip(&usize_in(0..=4096)).zip(&noise);
    check::check("JSON mutation safe", &input, |((value, pos_raw), junk)| {
        let text = value.to_string_compact();
        let chars: Vec<char> = text.chars().collect();
        let pos = pos_raw % chars.len().max(1);
        let mutated: String = chars
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == pos { *junk } else { c })
            .collect();
        let _ = Json::parse(&mutated);
        Ok(())
    });
}

/// A corpus of classic malformed inputs is rejected with an error (and
/// without a panic).
#[test]
fn malformed_corpus_is_rejected() {
    let cases = [
        "",
        "   ",
        "{",
        "}",
        "[1,",
        "[1 2]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{a:1}",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\u12\"",
        "tru",
        "nul",
        "+1",
        "0x10",
        "1e",
        "--3",
        "[1]]",
        "{} {}",
        "\u{0}",
    ];
    for case in cases {
        let result = Json::parse(case);
        assert!(result.is_err(), "accepted malformed input {case:?}");
    }
}

/// The reported error offset always points inside (or just past) the
/// input, for any mangled document.
#[test]
fn error_offsets_are_in_bounds() {
    let input = json_value(2).zip(&usize_in(0..=4096));
    check::check(
        "JSON error offsets in bounds",
        &input,
        |(value, cut_raw)| {
            let text = value.to_string_compact();
            let mut cut = cut_raw % (text.len() + 1);
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            if let Err(e) = Json::parse(&text[..cut]) {
                prop_assert!(
                    e.offset <= cut,
                    "error offset {} beyond input length {cut}",
                    e.offset
                );
            }
            Ok(())
        },
    );
}
