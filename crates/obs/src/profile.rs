//! Wall-clock phase profiling (flat view).
//!
//! The simulator is bit-deterministic in simulated time; wall-clock
//! measurement must therefore live entirely outside the simulation
//! state. [`ProfileSummary`] is the frozen flat table of per-phase
//! totals that never feeds back into simulation results; since the
//! hierarchical [`SpanTracer`](crate::span::SpanTracer) landed it is
//! produced by [`SpanTracer::flat_summary`](crate::span::SpanTracer::flat_summary)
//! as the top-level view of the span tree.
//!
//! The flat `PhaseProfiler` that used to fill it cannot represent
//! nested phases and is deprecated; use the span tracer instead.

use std::fmt;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Handle to a registered phase.
#[deprecated(
    since = "0.3.0",
    note = "use `obs::span::SpanTracer` and `SpanName`; the flat profiler cannot nest phases"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseId(usize);

#[derive(Debug, Clone, Default)]
struct PhaseAcc {
    total: Duration,
    calls: u64,
}

/// Accumulates wall-clock time per phase (flat — no nesting).
#[deprecated(
    since = "0.3.0",
    note = "use `obs::span::SpanTracer`, whose `flat_summary()` is a drop-in replacement \
            for `PhaseProfiler::summary()`"
)]
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    phases: Vec<(String, PhaseAcc)>,
    enabled: bool,
    created: Instant,
}

#[allow(deprecated)]
impl PhaseProfiler {
    /// A profiler that records nothing until [`enable`](Self::enable)d.
    pub fn new() -> Self {
        PhaseProfiler {
            phases: Vec::new(),
            enabled: false,
            created: Instant::now(),
        }
    }

    /// An enabled profiler.
    pub fn enabled() -> Self {
        let mut p = PhaseProfiler::new();
        p.enable();
        p
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether the profiler is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-finds) a phase by name.
    pub fn phase(&mut self, name: &str) -> PhaseId {
        if let Some(i) = self.phases.iter().position(|(n, _)| n == name) {
            return PhaseId(i);
        }
        self.phases.push((name.to_string(), PhaseAcc::default()));
        PhaseId(self.phases.len() - 1)
    }

    /// Reads the clock if enabled. Pass the result to
    /// [`stop`](Self::stop).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Accumulates the time since `started` into `phase` (no-op when
    /// `started` is `None`, i.e. the profiler was disabled at start).
    #[inline]
    pub fn stop(&mut self, phase: PhaseId, started: Option<Instant>) {
        if let Some(t0) = started {
            let acc = &mut self.phases[phase.0].1;
            acc.total += t0.elapsed();
            acc.calls += 1;
        }
    }

    /// Freezes the accumulated phases into a summary.
    pub fn summary(&self) -> ProfileSummary {
        ProfileSummary {
            phases: self
                .phases
                .iter()
                .map(|(name, acc)| PhaseStat {
                    name: name.clone(),
                    calls: acc.calls,
                    total_secs: acc.total.as_secs_f64(),
                })
                .collect(),
            wall_secs: self.created.elapsed().as_secs_f64(),
        }
    }
}

#[allow(deprecated)]
impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler::new()
    }
}

/// Frozen per-phase wall-clock totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase name, e.g. `plan`.
    pub name: String,
    /// Number of start/stop pairs.
    pub calls: u64,
    /// Total wall-clock seconds.
    pub total_secs: f64,
}

impl PhaseStat {
    /// Mean microseconds per call (0 when never called).
    pub fn mean_micros(&self) -> f64 {
        if self.calls > 0 {
            self.total_secs * 1e6 / self.calls as f64
        } else {
            0.0
        }
    }
}

/// A profiler's frozen output: phase totals plus the profiler's own
/// lifetime (an upper bound covering unattributed time).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileSummary {
    /// Per-phase stats, in registration order.
    pub phases: Vec<PhaseStat>,
    /// Wall-clock seconds since the profiler was created.
    pub wall_secs: f64,
}

impl ProfileSummary {
    /// Looks up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum of attributed phase time, seconds.
    pub fn attributed_secs(&self) -> f64 {
        self.phases.iter().map(|p| p.total_secs).sum()
    }

    /// JSON rendering (for the end-of-run trace record).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("wall_secs", Json::Num(self.wall_secs)),
            (
                "phases",
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("name", Json::Str(p.name.clone())),
                                ("calls", Json::Int(p.calls as i64)),
                                ("total_secs", Json::Num(p.total_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for ProfileSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "wall-clock: {:.3} s", self.wall_secs)?;
        let width = self
            .phases
            .iter()
            .map(|p| p.name.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for p in &self.phases {
            writeln!(
                f,
                "{:<width$}  {:>10.3} s  {:>10} calls  {:>10.1} us/call",
                p.name,
                p.total_secs,
                p.calls,
                p.mean_micros()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = PhaseProfiler::new();
        let id = p.phase("plan");
        let t = p.start();
        assert!(t.is_none());
        p.stop(id, t);
        assert_eq!(p.summary().phase("plan").unwrap().calls, 0);
    }

    #[test]
    fn enabled_profiler_accumulates() {
        let mut p = PhaseProfiler::enabled();
        let id = p.phase("dispatch");
        for _ in 0..3 {
            let t = p.start();
            std::hint::black_box(0u64);
            p.stop(id, t);
        }
        let s = p.summary();
        let stat = s.phase("dispatch").unwrap();
        assert_eq!(stat.calls, 3);
        assert!(stat.total_secs >= 0.0);
        assert!(s.wall_secs >= stat.total_secs);
        assert!(s.attributed_secs() >= stat.total_secs);
    }

    #[test]
    fn phase_ids_are_stable() {
        let mut p = PhaseProfiler::enabled();
        let a = p.phase("a");
        let b = p.phase("b");
        assert_ne!(a, b);
        assert_eq!(p.phase("a"), a);
    }

    #[test]
    fn summary_serializes() {
        let mut p = PhaseProfiler::enabled();
        let id = p.phase("x");
        let t = p.start();
        p.stop(id, t);
        let json = p.summary().to_json();
        assert!(json.get("wall_secs").is_some());
        let phases = json.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("x"));
        assert_eq!(phases[0].get("calls").unwrap().as_i64(), Some(1));
    }
}
