//! A minimal JSON value model with a writer and a parser.
//!
//! The workspace runs in hermetic environments with no third-party
//! crates, so the telemetry layer carries its own JSON implementation.
//! It covers exactly what the trace/report formats need:
//!
//! * numbers are `i64` or `f64` (floats print with Rust's shortest
//!   round-trip formatting, so `parse(write(x)) == x` bit-for-bit);
//! * objects preserve insertion order (trace records read naturally and
//!   serialization is deterministic);
//! * the parser accepts any RFC 8259 document produced by this writer or
//!   by common tools.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part that fits `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved.
    Object(Vec<(String, Json)>),
}

/// A parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where the parser stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (accepting both number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `i64` (floats only when exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(x) if x.fract() == 0.0 && x.abs() < 9.2e18 => Some(*x as i64),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, &mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                message: "trailing characters after document".to_string(),
                offset: pos,
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Conversion into a [`Json`] value (the writer-side half of the layer).
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(x) => write_number(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Json, out: &mut String, depth: usize) {
    let indent = |out: &mut String, d: usize| {
        for _ in 0..d {
            out.push_str("  ");
        }
    };
    match value {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push(']');
        }
        Json::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                indent(out, depth + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, out, depth + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

/// Writes an `f64` so it parses back bit-identically: Rust's `{:?}` is
/// the shortest representation that round-trips. Non-finite values have
/// no JSON spelling and degrade to `null`.
fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        offset,
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected `{}`", b as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(err(&format!("unexpected byte `{}`", c as char), *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(&format!("expected `{word}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(&format!("invalid number `{text}`"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err(err("unterminated string", *pos));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err("unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: combine a high surrogate with
                        // the following \uXXXX low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| err("invalid \\u escape", *pos))?);
                    }
                    _ => return Err(err("unknown escape", *pos - 1)),
                }
            }
            _ => {
                // Re-sync to char boundaries for multi-byte UTF-8.
                let rest_start = *pos - 1;
                let s = std::str::from_utf8(&bytes[rest_start..])
                    .map_err(|_| err("invalid UTF-8 in string", rest_start))?;
                let ch = s.chars().next().expect("non-empty by construction");
                out.push(ch);
                *pos = rest_start + ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return Err(err("truncated \\u escape", *pos));
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| err("non-ASCII \\u escape", *pos))?;
    let code = u32::from_str_radix(s, 16).map_err(|_| err("bad \\u escape", *pos))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -2.5e-10,
            123_456_789.123_456_79,
        ] {
            let text = Json::Num(x).to_string_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = Json::Int(i64::MAX);
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_i64(), Some(i64::MAX));
    }

    #[test]
    fn object_preserves_order_and_gets() {
        let v = Json::obj([("b", Json::Int(1)), ("a", Json::Str("x".to_string()))]);
        assert_eq!(v.to_string_compact(), r#"{"b":1,"a":"x"}"#);
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote \" backslash \\ newline \n tab \t unicode ∆ control \u{1}";
        let v = Json::Str(nasty.to_string());
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn parses_foreign_documents() {
        let doc = r#" { "a" : [ 1 , 2.5 , null , { "b" : "\u0041\ud83d\ude00" } ] , "c" : true } "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[3].get("b").and_then(Json::as_str), Some("A😀"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\x\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = Json::obj([
            (
                "nested",
                Json::Array(vec![Json::Int(1), Json::obj([("k", Json::Null)])]),
            ),
            ("empty", Json::Array(vec![])),
        ]);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }
}
