//! Streaming trace sinks.
//!
//! A [`TraceSink`] receives one [`Json`] record per telemetry event. The
//! contract that keeps week-long runs feasible: sinks either stream
//! (constant resident memory, like [`JsonlSink`]) or are explicitly
//! test-only ([`MemorySink`]). Hot paths must check [`TraceSink::enabled`]
//! before building a record so the disabled case ([`NullSink`]) costs one
//! branch and no allocation.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json::Json;

/// A destination for telemetry records.
///
/// `Debug` is a supertrait so producers holding a `Box<dyn TraceSink>`
/// can stay `#[derive(Debug)]`.
pub trait TraceSink: std::fmt::Debug {
    /// Whether emitting is worthwhile. Producers should skip record
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one record.
    fn emit(&mut self, record: &Json);

    /// Flushes buffered output (no-op for non-buffering sinks).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error for file-backed sinks.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Records emitted so far.
    fn records_emitted(&self) -> u64;
}

/// Discards everything without looking at it; `enabled()` is `false`, so
/// producers never even build records. The zero-overhead default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _record: &Json) {}

    fn records_emitted(&self) -> u64 {
        0
    }
}

/// Counts records and discards them — measures trace volume without
/// paying for storage.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    emitted: u64,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        CountingSink::default()
    }
}

impl TraceSink for CountingSink {
    fn emit(&mut self, _record: &Json) {
        self.emitted += 1;
    }

    fn records_emitted(&self) -> u64 {
        self.emitted
    }
}

/// Buffers records in memory — for tests and short interactive runs
/// only (memory grows with the horizon).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    records: Vec<Json>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The records received so far, in order.
    pub fn records(&self) -> &[Json] {
        &self.records
    }

    /// Consumes the sink, returning its records.
    pub fn into_records(self) -> Vec<Json> {
        self.records
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, record: &Json) {
        self.records.push(record.clone());
    }

    fn records_emitted(&self) -> u64 {
        self.records.len() as u64
    }
}

/// Streams records as JSON Lines (one compact document per line) through
/// a [`BufWriter`]. Resident memory is the buffer size, independent of
/// how many records pass through.
pub struct JsonlSink<W: Write> {
    writer: W,
    emitted: u64,
    bytes: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file sink at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer (callers wanting buffering supply their own
    /// [`BufWriter`]; [`JsonlSink::create`] does this for files).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            emitted: 0,
            bytes: 0,
        }
    }

    /// Bytes written so far (before any buffering still in flight).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, record: &Json) {
        let mut line = record.to_string_compact();
        line.push('\n');
        // Trace output is advisory; a full disk must not abort the
        // simulation. Errors surface at flush().
        let _ = self.writer.write_all(line.as_bytes());
        self.emitted += 1;
        self.bytes += line.len() as u64;
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn records_emitted(&self) -> u64 {
        self.emitted
    }
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("emitted", &self.emitted)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: i64) -> Json {
        Json::obj([("seq", Json::Int(i)), ("kind", Json::Str("test".into()))])
    }

    #[test]
    fn null_sink_is_disabled_and_counts_nothing() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(&record(1));
        assert_eq!(s.records_emitted(), 0);
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new();
        assert!(s.enabled());
        for i in 0..5 {
            s.emit(&record(i));
        }
        assert_eq!(s.records_emitted(), 5);
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut s = MemorySink::new();
        s.emit(&record(1));
        s.emit(&record(2));
        assert_eq!(s.records()[0].get("seq").unwrap().as_i64(), Some(1));
        assert_eq!(s.records()[1].get("seq").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut buf = Vec::new();
        {
            let mut s = JsonlSink::new(&mut buf);
            s.emit(&record(1));
            s.emit(&record(2));
            s.flush().unwrap();
            assert_eq!(s.records_emitted(), 2);
            assert!(s.bytes_written() > 0);
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("seq").unwrap().as_i64(), Some(i as i64 + 1));
        }
    }
}
