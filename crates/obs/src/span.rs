//! Hierarchical wall-clock span tracing.
//!
//! [`SpanTracer`] generalizes the flat phase profiler to *nested* spans:
//! `plan > consolidate > candidate_scan`, `execute > migration`, and so
//! on. Each distinct call path gets one arena node holding cumulative
//! wall time and call count, and a bounded ring of recent span events
//! preserves individual start/duration pairs for chrome://tracing
//! export.
//!
//! The tracer follows the crate's design rule — observe, never steer:
//! wall time never feeds simulation state, and a disabled tracer costs a
//! single branch per [`enter`](SpanTracer::enter)/[`exit`](SpanTracer::exit)
//! with no clock read and no allocation. When enabled, allocation happens
//! only the first time a call path or the event ring is seen (warmup);
//! steady-state ticks allocate nothing.
//!
//! Aggregated results freeze into a [`SpanSummary`] — a depth-annotated
//! table of paths with total and self time — which serializes to JSON
//! for the end-of-run trace record, renders as an attribution table via
//! [`Display`](fmt::Display), and exports as chrome://tracing JSON
//! ([`SpanTracer::to_chrome_json`]) or collapsed-stack flamegraph text
//! ([`SpanTracer::to_collapsed`]).

use std::fmt;
use std::time::{Duration, Instant};

use crate::json::{Json, JsonError};
use crate::profile::{PhaseStat, ProfileSummary};

/// Handle to an interned span name (see [`SpanTracer::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanName(usize);

/// One node in the call-path arena: a distinct (parent path, name)
/// pair with its accumulated totals.
#[derive(Debug, Clone)]
struct SpanNode {
    /// Index into the tracer's name table (`usize::MAX` for the root).
    name: usize,
    /// Arena indices of children, in first-seen order.
    children: Vec<usize>,
    /// Completed enter/exit pairs.
    calls: u64,
    /// Total wall time across all calls.
    total: Duration,
}

/// One completed span occurrence, kept in the bounded event ring for
/// chrome://tracing export.
#[derive(Debug, Clone, Copy)]
struct SpanEvent {
    /// Index into the name table.
    name: usize,
    /// Nesting depth (1 = top-level span).
    depth: u32,
    /// Start, microseconds since the tracer's epoch.
    start_us: u64,
    /// Duration, microseconds.
    dur_us: u64,
}

/// Default capacity of the recent-event ring.
const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Hierarchical wall-clock span tracer.
///
/// ```
/// let mut t = obs::SpanTracer::enabled();
/// let plan = t.name("plan");
/// let scan = t.name("candidate_scan");
/// t.enter(plan);
/// t.enter(scan);
/// t.exit(scan);
/// t.exit(plan);
/// let summary = t.summary();
/// assert_eq!(summary.span("plan;candidate_scan").unwrap().depth, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SpanTracer {
    enabled: bool,
    /// Interned span names; `SpanName` indexes this table.
    names: Vec<String>,
    /// Call-path arena; node 0 is the synthetic root.
    nodes: Vec<SpanNode>,
    /// Open spans: (arena node, start instant).
    stack: Vec<(usize, Instant)>,
    /// Ring buffer of recent completed events.
    events: Vec<SpanEvent>,
    /// Next write position in the ring.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Ring capacity (0 disables event capture, aggregation still runs).
    capacity: usize,
    created: Instant,
}

impl SpanTracer {
    /// A tracer that records nothing until [`enable`](Self::enable)d.
    pub fn new() -> Self {
        SpanTracer {
            enabled: false,
            names: Vec::new(),
            nodes: vec![SpanNode {
                name: usize::MAX,
                children: Vec::new(),
                calls: 0,
                total: Duration::ZERO,
            }],
            stack: Vec::new(),
            events: Vec::new(),
            head: 0,
            dropped: 0,
            capacity: DEFAULT_EVENT_CAPACITY,
            created: Instant::now(),
        }
    }

    /// An enabled tracer.
    pub fn enabled() -> Self {
        let mut t = SpanTracer::new();
        t.enable();
        t
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether the tracer is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Caps the recent-event ring at `capacity` completed spans
    /// (aggregated totals are unaffected; `0` disables event capture).
    pub fn set_event_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.events.truncate(capacity);
        self.head = if capacity == 0 {
            0
        } else {
            self.head % capacity.max(1)
        };
    }

    /// Interns a span name. Call once at setup and reuse the handle on
    /// the hot path.
    pub fn name(&mut self, name: &str) -> SpanName {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return SpanName(i);
        }
        self.names.push(name.to_string());
        SpanName(self.names.len() - 1)
    }

    /// Opens a span nested under the currently open span (or at the top
    /// level). One branch and no clock read when disabled.
    #[inline]
    pub fn enter(&mut self, name: SpanName) {
        if !self.enabled {
            return;
        }
        let parent = self.stack.last().map_or(0, |&(node, _)| node);
        let node = self.child_of(parent, name.0);
        self.stack.push((node, Instant::now()));
    }

    /// Closes the innermost open span, accumulating its wall time.
    ///
    /// `name` must match the span opened by the pairing
    /// [`enter`](Self::enter) (checked in debug builds).
    #[inline]
    pub fn exit(&mut self, name: SpanName) {
        if !self.enabled {
            return;
        }
        let (node, t0) = self
            .stack
            .pop()
            .expect("SpanTracer::exit without a matching enter");
        debug_assert_eq!(
            self.nodes[node].name, name.0,
            "SpanTracer::exit name does not match the innermost open span"
        );
        let dur = t0.elapsed();
        let n = &mut self.nodes[node];
        n.calls += 1;
        n.total += dur;
        if self.capacity > 0 {
            let event = SpanEvent {
                name: name.0,
                depth: self.stack.len() as u32 + 1,
                start_us: t0.duration_since(self.created).as_micros() as u64,
                dur_us: dur.as_micros() as u64,
            };
            if self.events.len() < self.capacity {
                self.events.push(event);
            } else {
                self.events[self.head] = event;
                self.dropped += 1;
            }
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Finds or creates the arena node for `name` under `parent`.
    fn child_of(&mut self, parent: usize, name: usize) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let node = self.nodes.len();
        self.nodes.push(SpanNode {
            name,
            children: Vec::new(),
            calls: 0,
            total: Duration::ZERO,
        });
        self.nodes[parent].children.push(node);
        node
    }

    /// Number of arena nodes allocated (1 = just the root). Exposed so
    /// tests can assert the disabled path allocates nothing.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Completed events currently buffered in the ring.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Events overwritten after the ring filled.
    pub fn events_dropped(&self) -> u64 {
        self.dropped
    }

    /// Freezes the call-path arena into a [`SpanSummary`] (depth-first
    /// preorder, children in first-seen order).
    pub fn summary(&self) -> SpanSummary {
        let mut spans = Vec::with_capacity(self.nodes.len().saturating_sub(1));
        self.collect(0, "", 0, &mut spans);
        SpanSummary {
            spans,
            wall_secs: self.created.elapsed().as_secs_f64(),
        }
    }

    fn collect(&self, node: usize, prefix: &str, depth: u32, out: &mut Vec<SpanStat>) {
        for &c in &self.nodes[node].children {
            let n = &self.nodes[c];
            let name = &self.names[n.name];
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix};{name}")
            };
            let child_secs: f64 = n
                .children
                .iter()
                .map(|&g| self.nodes[g].total.as_secs_f64())
                .sum();
            let total_secs = n.total.as_secs_f64();
            out.push(SpanStat {
                path: path.clone(),
                name: name.clone(),
                depth: depth + 1,
                calls: n.calls,
                total_secs,
                self_secs: (total_secs - child_secs).max(0.0),
            });
            self.collect(c, &path, depth + 1, out);
        }
    }

    /// The flat, top-level view: one [`PhaseStat`] per depth-1 span, in
    /// first-seen order — the drop-in replacement for the old
    /// phase-profiler summary.
    pub fn flat_summary(&self) -> ProfileSummary {
        ProfileSummary {
            phases: self.nodes[0]
                .children
                .iter()
                .map(|&c| {
                    let n = &self.nodes[c];
                    PhaseStat {
                        name: self.names[n.name].clone(),
                        calls: n.calls,
                        total_secs: n.total.as_secs_f64(),
                    }
                })
                .collect(),
            wall_secs: self.created.elapsed().as_secs_f64(),
        }
    }

    /// Renders the buffered recent events as chrome://tracing JSON
    /// (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn to_chrome_json(&self) -> Json {
        let len = self.events.len();
        let start = if len < self.capacity.max(1) {
            0
        } else {
            self.head
        };
        let events: Vec<Json> = (0..len)
            .map(|k| {
                let e = &self.events[(start + k) % len.max(1)];
                Json::obj([
                    ("name", Json::Str(self.names[e.name].clone())),
                    ("ph", Json::Str("X".into())),
                    ("ts", Json::Int(e.start_us as i64)),
                    ("dur", Json::Int(e.dur_us as i64)),
                    ("pid", Json::Int(0)),
                    ("tid", Json::Int(e.depth as i64)),
                ])
            })
            .collect();
        Json::obj([
            ("traceEvents", Json::Array(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }

    /// Renders the aggregated call paths as collapsed-stack flamegraph
    /// text: one `path;to;span <self-microseconds>` line per path, ready
    /// for `flamegraph.pl` or any compatible renderer.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for s in self.summary().spans {
            if s.calls > 0 {
                let micros = (s.self_secs * 1e6).round() as u64;
                out.push_str(&s.path);
                out.push(' ');
                out.push_str(&micros.to_string());
                out.push('\n');
            }
        }
        out
    }
}

impl Default for SpanTracer {
    fn default() -> Self {
        SpanTracer::new()
    }
}

/// One aggregated call path in a [`SpanSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Full call path, `;`-joined (`plan;consolidate;trial`).
    pub path: String,
    /// Leaf span name.
    pub name: String,
    /// Nesting depth (1 = top-level).
    pub depth: u32,
    /// Completed enter/exit pairs.
    pub calls: u64,
    /// Total wall seconds, including children.
    pub total_secs: f64,
    /// Wall seconds not attributed to child spans.
    pub self_secs: f64,
}

/// A tracer's frozen hierarchical output: every observed call path with
/// totals, plus the tracer's own lifetime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanSummary {
    /// Call paths in depth-first preorder.
    pub spans: Vec<SpanStat>,
    /// Wall-clock seconds since the tracer was created.
    pub wall_secs: f64,
}

impl SpanSummary {
    /// Looks up a span by full path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Direct children of the span at `path` (or top-level spans for
    /// `""`).
    pub fn children_of(&self, path: &str) -> Vec<&SpanStat> {
        self.spans
            .iter()
            .filter(|s| {
                if path.is_empty() {
                    s.depth == 1
                } else {
                    s.path.len() > path.len()
                        && s.path.starts_with(path)
                        && s.path.as_bytes()[path.len()] == b';'
                        && s.depth == self.span(path).map_or(u32::MAX, |p| p.depth + 1)
                }
            })
            .collect()
    }

    /// Fraction of the span's wall time attributed to its direct
    /// children (`None` when the span is missing or never ran).
    pub fn attributed_fraction(&self, path: &str) -> Option<f64> {
        let parent = self.span(path)?;
        if parent.total_secs <= 0.0 {
            return None;
        }
        let child_secs: f64 = self.children_of(path).iter().map(|c| c.total_secs).sum();
        Some(child_secs / parent.total_secs)
    }

    /// JSON rendering (for the end-of-run trace record and bench
    /// artifacts).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("wall_secs", Json::Num(self.wall_secs)),
            (
                "spans",
                Json::Array(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("path", Json::Str(s.path.clone())),
                                ("name", Json::Str(s.name.clone())),
                                ("depth", Json::Int(s.depth as i64)),
                                ("calls", Json::Int(s.calls as i64)),
                                ("total_secs", Json::Num(s.total_secs)),
                                ("self_secs", Json::Num(s.self_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the [`to_json`](Self::to_json) form back.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when required fields are missing or
    /// mistyped.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let missing = |what: &str| JsonError {
            message: format!("span summary: missing {what}"),
            offset: 0,
        };
        let field = |j: &Json, name: &str| {
            j.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| missing(&format!("number `{name}`")))
        };
        let text = |j: &Json, name: &str| {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| missing(&format!("string `{name}`")))
        };
        let wall_secs = field(json, "wall_secs")?;
        let arr = json
            .get("spans")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("`spans` array"))?;
        let mut spans = Vec::with_capacity(arr.len());
        for j in arr {
            spans.push(SpanStat {
                path: text(j, "path")?,
                name: text(j, "name")?,
                depth: field(j, "depth")? as u32,
                calls: field(j, "calls")? as u64,
                total_secs: field(j, "total_secs")?,
                self_secs: field(j, "self_secs")?,
            });
        }
        Ok(SpanSummary { spans, wall_secs })
    }
}

impl fmt::Display for SpanSummary {
    /// Indented attribution table: total, self, calls, and the share of
    /// the parent span's time each path accounts for.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "wall-clock: {:.3} s", self.wall_secs)?;
        let width = self
            .spans
            .iter()
            .map(|s| s.name.len() + 2 * (s.depth as usize - 1))
            .max()
            .unwrap_or(0)
            .max(4);
        writeln!(
            f,
            "{:<width$}  {:>12} {:>12} {:>10} {:>9}",
            "span", "total s", "self s", "calls", "% parent"
        )?;
        for s in &self.spans {
            let parent_total = match s.path.rfind(';') {
                Some(cut) => self.span(&s.path[..cut]).map(|p| p.total_secs),
                None => Some(self.wall_secs),
            };
            let share = match parent_total {
                Some(p) if p > 0.0 => format!("{:.1}", 100.0 * s.total_secs / p),
                _ => "-".to_string(),
            };
            writeln!(
                f,
                "{:>indent$}{:<rest$}  {:>12.3} {:>12.3} {:>10} {:>9}",
                "",
                s.name,
                s.total_secs,
                s.self_secs,
                s.calls,
                share,
                indent = 2 * (s.depth as usize - 1),
                rest = width - 2 * (s.depth as usize - 1),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert_and_allocation_free() {
        let mut t = SpanTracer::new();
        let a = t.name("plan");
        let b = t.name("scan");
        for _ in 0..1000 {
            t.enter(a);
            t.enter(b);
            t.exit(b);
            t.exit(a);
        }
        // No arena nodes beyond the root, no buffered events: the
        // disabled hot path never allocates.
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.event_count(), 0);
        assert!(t.summary().spans.is_empty());
        assert!(t.flat_summary().phases.is_empty());
    }

    #[test]
    fn nested_spans_build_a_path_tree() {
        let mut t = SpanTracer::enabled();
        let plan = t.name("plan");
        let scan = t.name("scan");
        let trial = t.name("trial");
        for _ in 0..3 {
            t.enter(plan);
            t.enter(scan);
            t.exit(scan);
            t.enter(trial);
            t.exit(trial);
            t.exit(plan);
        }
        // The same name under a different parent is a different path.
        t.enter(trial);
        t.exit(trial);
        let s = t.summary();
        assert_eq!(s.span("plan").unwrap().calls, 3);
        assert_eq!(s.span("plan;scan").unwrap().depth, 2);
        assert_eq!(s.span("plan;trial").unwrap().calls, 3);
        assert_eq!(s.span("trial").unwrap().calls, 1);
        let children = s.children_of("plan");
        assert_eq!(children.len(), 2);
        let frac = s.attributed_fraction("plan").unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&frac), "{frac}");
        // Totals include children; self excludes them.
        let plan_stat = s.span("plan").unwrap();
        assert!(plan_stat.total_secs >= plan_stat.self_secs);
    }

    #[test]
    fn flat_summary_matches_depth_one() {
        let mut t = SpanTracer::enabled();
        let a = t.name("observe");
        let b = t.name("plan");
        let inner = t.name("scan");
        t.enter(a);
        t.exit(a);
        t.enter(b);
        t.enter(inner);
        t.exit(inner);
        t.exit(b);
        let flat = t.flat_summary();
        let names: Vec<&str> = flat.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["observe", "plan"]);
        assert_eq!(flat.phase("plan").unwrap().calls, 1);
    }

    #[test]
    fn event_ring_is_bounded() {
        let mut t = SpanTracer::enabled();
        t.set_event_capacity(4);
        let a = t.name("x");
        for _ in 0..10 {
            t.enter(a);
            t.exit(a);
        }
        assert_eq!(t.event_count(), 4);
        assert_eq!(t.events_dropped(), 6);
        assert_eq!(t.summary().span("x").unwrap().calls, 10);
        let chrome = t.to_chrome_json();
        let events = chrome.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
    }

    #[test]
    fn exports_serialize_and_round_trip() {
        let mut t = SpanTracer::enabled();
        let plan = t.name("plan");
        let scan = t.name("scan");
        t.enter(plan);
        t.enter(scan);
        t.exit(scan);
        t.exit(plan);
        let summary = t.summary();
        let parsed = SpanSummary::from_json(&summary.to_json()).unwrap();
        assert_eq!(parsed, summary);
        let collapsed = t.to_collapsed();
        assert!(collapsed.contains("plan;scan "), "{collapsed}");
        let table = summary.to_string();
        assert!(table.contains("% parent"), "{table}");
        assert!(table.contains("  scan"), "{table}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "does not match")]
    fn mismatched_exit_panics_in_debug() {
        let mut t = SpanTracer::enabled();
        let a = t.name("a");
        let b = t.name("b");
        t.enter(a);
        t.exit(b);
    }
}
