//! Observability layer for the `agilepm` workspace.
//!
//! Everything the paper's evaluation needs to *explain* a run — not just
//! its aggregate totals — flows through this crate:
//!
//! * [`json`] — a zero-dependency JSON value model, writer, and parser.
//!   The workspace builds in hermetic environments, so the telemetry
//!   formats carry their own serialization.
//! * [`sink`] — the [`TraceSink`] trait and its implementations: the
//!   constant-memory [`JsonlSink`] streams one record per line to disk,
//!   [`MemorySink`] buffers for tests, [`CountingSink`] measures volume,
//!   and [`NullSink`] compiles the whole path down to one branch.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   log-bucketed histograms, frozen into deterministic
//!   [`MetricsSnapshot`]s that land in simulation reports.
//! * [`span`] — the hierarchical wall-clock [`SpanTracer`]: nested
//!   spans (`plan > consolidate > candidate_scan`, ...) aggregated per
//!   call path, exportable as attribution tables, chrome://tracing
//!   JSON, and collapsed-stack flamegraph text. Wall time never touches
//!   simulation state, so runs stay bit-deterministic with tracing on
//!   or off.
//! * [`profile`] — the frozen [`ProfileSummary`] table (still the flat
//!   top-level view of a trace) and the deprecated flat
//!   `PhaseProfiler`, superseded by [`SpanTracer`].
//!
//! # Design rule: observe, never steer
//!
//! Nothing in this crate may influence simulation results. Sinks consume
//! records; registries count; profilers read real clocks that the
//! simulation cannot see. The `dcsim` determinism tests enforce this by
//! comparing reports across telemetry configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod span;

pub use json::{Json, JsonError, ToJson};
pub use metrics::{
    CounterId, GaugeId, Histogram, HistogramId, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot, Quantiles,
};
#[allow(deprecated)]
pub use profile::{PhaseId, PhaseProfiler, PhaseStat, ProfileSummary};
pub use sink::{CountingSink, JsonlSink, MemorySink, NullSink, TraceSink};
pub use span::{SpanName, SpanStat, SpanSummary, SpanTracer};
