//! A registry of named counters, gauges, and log-bucketed histograms.
//!
//! Producers register instruments once (getting back a cheap index
//! handle) and update them on hot paths with plain array stores — no
//! hashing, no locking, no allocation. [`MetricsRegistry::snapshot`]
//! freezes everything into a [`MetricsSnapshot`]: a deterministic,
//! comparable value that lands in simulation reports and renders as an
//! aligned text table or JSON.

use std::fmt;

use crate::json::{Json, JsonError};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Monotonic event counts, instantaneous values, and latency/size
/// distributions, addressed by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

/// Power-of-two bucketed histogram: bucket `i` counts samples in
/// `(2^(i-1+OFFSET), 2^(i+OFFSET)]`, with an underflow bucket at the
/// front. Covers ~1 ms to ~36 h with 28 buckets when samples are
/// seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    // Default is implemented manually below (min/max need non-zero
    // sentinels).
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Non-finite samples rejected by [`observe`](Self::observe) — kept
    /// out of every aggregate so one NaN cannot poison `sum`/`mean`.
    dropped: u64,
}

/// Smallest bucket upper bound, as a power of two (2^-10 ≈ 0.001).
const BUCKET_MIN_EXP: i32 = -10;
/// Number of finite buckets; the last one is an overflow catch-all.
const BUCKET_COUNT: usize = 28;

impl Histogram {
    /// An empty histogram. Public so deterministic components (e.g. the
    /// manager's per-round action sizes) can own one directly instead of
    /// going through a [`MetricsRegistry`].
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            dropped: 0,
        }
    }

    /// Records one sample (non-finite samples are counted and dropped).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            // A single NaN would make sum/mean NaN forever (and the
            // bucketing would shunt it to underflow, masking the
            // corruption); infinities would pin min/max. Count and drop.
            self.dropped += 1;
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.counts[bucket_index(value)] += 1;
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite samples rejected (excluded from every aggregate).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Non-empty buckets as `(upper_bound, count)`, in order. The last
    /// bucket's bound is `f64::INFINITY`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`) from bucket
    /// boundaries: the true quantile is at most the returned value.
    pub fn quantile_upper(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// The standard p50/p95/p99 summary block (`None` when the
    /// histogram holds no samples). Each value is the conservative
    /// bucket-boundary upper bound from
    /// [`quantile_upper`](Self::quantile_upper).
    pub fn quantiles(&self) -> Option<Quantiles> {
        Some(Quantiles {
            p50: self.quantile_upper(0.50)?,
            p95: self.quantile_upper(0.95)?,
            p99: self.quantile_upper(0.99)?,
        })
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A percentile summary block: conservative upper bounds on the p50,
/// p95, and p99 of a [`Histogram`]'s samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Upper bound on the median.
    pub p50: f64,
    /// Upper bound on the 95th percentile.
    pub p95: f64,
    /// Upper bound on the 99th percentile.
    pub p99: f64,
}

/// Bucket index of a sample.
fn bucket_index(value: f64) -> usize {
    if value <= 0.0 || value.is_nan() {
        return 0; // underflow: zero, negative, NaN
    }
    let exp = value.log2().ceil() as i64 - BUCKET_MIN_EXP as i64;
    exp.clamp(0, BUCKET_COUNT as i64 - 1) as usize
}

/// Upper bound of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    if i + 1 == BUCKET_COUNT {
        f64::INFINITY
    } else {
        (2.0f64).powi(i as i32 + BUCKET_MIN_EXP)
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or re-finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or re-finds) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or re-finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Raises a gauge to `value` if it is higher (peak tracking).
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, value: f64) {
        let g = &mut self.gauges[id.0].1;
        if value > *g {
            *g = value;
        }
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Freezes the registry into a deterministic snapshot (entries
    /// sorted by name).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<MetricEntry> = self
            .counters
            .iter()
            .map(|(n, v)| MetricEntry {
                name: n.clone(),
                value: MetricValue::Counter(*v),
            })
            .chain(self.gauges.iter().map(|(n, v)| MetricEntry {
                name: n.clone(),
                value: MetricValue::Gauge(*v),
            }))
            .chain(self.histograms.iter().map(|(n, h)| MetricEntry {
                name: n.clone(),
                value: MetricValue::Histogram(h.clone()),
            }))
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { entries }
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Dotted metric name, e.g. `sim.migrations.duration_secs`.
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Distribution.
    Histogram(Histogram),
}

/// A frozen, ordered view of a [`MetricsRegistry`] — comparable across
/// runs (its `PartialEq` backs the telemetry-determinism tests).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Name-sorted entries.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Counter value by name (0 if absent — counters that never fired
    /// may be omitted from serialized snapshots).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// JSON rendering (stable: entries are name-sorted).
    pub fn to_json(&self) -> Json {
        Json::Array(
            self.entries
                .iter()
                .map(|e| {
                    let mut pairs = vec![("name".to_string(), Json::Str(e.name.clone()))];
                    match &e.value {
                        MetricValue::Counter(v) => {
                            pairs.push(("type".to_string(), Json::Str("counter".into())));
                            pairs.push(("value".to_string(), Json::Int(*v as i64)));
                        }
                        MetricValue::Gauge(v) => {
                            pairs.push(("type".to_string(), Json::Str("gauge".into())));
                            pairs.push(("value".to_string(), Json::Num(*v)));
                        }
                        MetricValue::Histogram(h) => {
                            pairs.push(("type".to_string(), Json::Str("histogram".into())));
                            pairs.push(("count".to_string(), Json::Int(h.count as i64)));
                            pairs.push(("dropped".to_string(), Json::Int(h.dropped as i64)));
                            pairs.push(("sum".to_string(), Json::Num(h.sum)));
                            pairs.push(("min".to_string(), Json::Num(h.min().unwrap_or(0.0))));
                            pairs.push(("max".to_string(), Json::Num(h.max().unwrap_or(0.0))));
                            pairs.push((
                                "buckets".to_string(),
                                Json::Array(
                                    h.counts.iter().map(|&c| Json::Int(c as i64)).collect(),
                                ),
                            ));
                        }
                    }
                    Json::Object(pairs)
                })
                .collect(),
        )
    }

    /// Rebuilds a snapshot from [`MetricsSnapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the document does not match the schema.
    pub fn from_json(json: &Json) -> Result<Self, JsonError> {
        let bad = |m: &str| JsonError {
            message: m.to_string(),
            offset: 0,
        };
        let items = json
            .as_array()
            .ok_or_else(|| bad("snapshot: not an array"))?;
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            let name = item
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("snapshot entry: missing name"))?
                .to_string();
            let kind = item
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("snapshot entry: missing type"))?;
            let value = match kind {
                "counter" => MetricValue::Counter(
                    item.get("value")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("counter: bad value"))?,
                ),
                "gauge" => MetricValue::Gauge(
                    item.get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("gauge: bad value"))?,
                ),
                "histogram" => {
                    let counts: Vec<u64> = item
                        .get("buckets")
                        .and_then(Json::as_array)
                        .ok_or_else(|| bad("histogram: missing buckets"))?
                        .iter()
                        .map(|v| v.as_u64().ok_or_else(|| bad("histogram: bad bucket")))
                        .collect::<Result<_, _>>()?;
                    if counts.len() != BUCKET_COUNT {
                        return Err(bad("histogram: bucket count mismatch"));
                    }
                    let count = item
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("histogram: bad count"))?;
                    Histogram {
                        counts,
                        count,
                        // Absent in snapshots serialized before the
                        // non-finite guard existed.
                        dropped: item.get("dropped").and_then(Json::as_u64).unwrap_or(0),
                        sum: item.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                        min: if count > 0 {
                            item.get("min").and_then(Json::as_f64).unwrap_or(0.0)
                        } else {
                            f64::INFINITY
                        },
                        max: if count > 0 {
                            item.get("max").and_then(Json::as_f64).unwrap_or(0.0)
                        } else {
                            f64::NEG_INFINITY
                        },
                    }
                    .into()
                }
                other => return Err(bad(&format!("snapshot entry: unknown type `{other}`"))),
            };
            entries.push(MetricEntry { name, value });
        }
        Ok(MetricsSnapshot { entries })
    }
}

impl From<Histogram> for MetricValue {
    fn from(h: Histogram) -> Self {
        MetricValue::Histogram(h)
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Aligned plain-text table, one metric per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => writeln!(f, "{:<width$}  {v}", e.name)?,
                MetricValue::Gauge(v) => writeln!(f, "{:<width$}  {v:.3}", e.name)?,
                MetricValue::Histogram(h) => {
                    if h.count() == 0 {
                        writeln!(f, "{:<width$}  (no samples)", e.name)?;
                    } else {
                        let q = h.quantiles().unwrap_or(Quantiles {
                            p50: 0.0,
                            p95: 0.0,
                            p99: 0.0,
                        });
                        writeln!(
                            f,
                            "{:<width$}  n={} mean={:.3} min={:.3} max={:.3} \
                             p50<={:.3} p95<={:.3} p99<={:.3}",
                            e.name,
                            h.count(),
                            h.mean(),
                            h.min().unwrap_or(0.0),
                            h.max().unwrap_or(0.0),
                            q.p50,
                            q.p95,
                            q.p99,
                        )?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("events.total");
        let g = reg.gauge("queue.peak");
        reg.inc(c);
        reg.add(c, 4);
        reg.set_max(g, 10.0);
        reg.set_max(g, 3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("events.total"), 5);
        assert_eq!(snap.get("queue.peak"), Some(&MetricValue::Gauge(10.0)));
    }

    #[test]
    fn registering_same_name_reuses_slot() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        reg.inc(a);
        reg.inc(b);
        assert_eq!(reg.counter_value(a), 2);
    }

    #[test]
    fn histogram_buckets_are_logarithmic() {
        let mut h = Histogram::new();
        for v in [0.5, 0.6, 10.0, 10.0, 100_000.0, 0.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(100_000.0));
        // 0.5 and 0.6: 0.5 lands in the (0.25, 0.5] bucket, 0.6 in (0.5, 1].
        let buckets = h.buckets();
        assert!(buckets.len() >= 4, "{buckets:?}");
        // Quantile upper bounds are conservative and ordered.
        let p50 = h.quantile_upper(0.5).unwrap();
        let p99 = h.quantile_upper(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= 100_000.0 + 1e-9);
    }

    #[test]
    fn non_finite_samples_are_dropped_and_counted() {
        // Regression: a single NaN used to make sum/mean NaN forever
        // because observe() added the sample before bucketing.
        let mut h = Histogram::new();
        h.observe(2.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(4.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.dropped(), 3);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(4.0));
        // No bucket absorbed the rejects.
        assert_eq!(h.buckets().iter().map(|&(_, c)| c).sum::<u64>(), 2);
        // The dropped count survives the JSON round trip.
        let mut reg = MetricsRegistry::new();
        let id = reg.histogram("with.nans");
        reg.observe(id, f64::NAN);
        reg.observe(id, 1.0);
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        match back.get("with.nans") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.dropped(), 1);
                assert_eq!(h.count(), 1);
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_comparable() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let z = reg.counter("z.last");
            let a = reg.counter("a.first");
            reg.inc(z);
            reg.inc(a);
            reg.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        assert_eq!(s1.entries[0].name, "a.first");
        assert_eq!(s1.entries[1].name, "z.last");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("migrations.completed");
        let g = reg.gauge("queue.peak");
        let h = reg.histogram("transition.latency_secs");
        reg.add(c, 42);
        reg.set(g, 17.5);
        reg.observe(h, 12.0);
        reg.observe(h, 300.0);
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn display_renders_every_kind() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("count");
        reg.inc(c);
        reg.gauge("gauge");
        reg.histogram("empty_histo");
        let h = reg.histogram("histo");
        reg.observe(h, 2.0);
        let text = reg.snapshot().to_string();
        assert!(text.contains("count"));
        assert!(text.contains("(no samples)"));
        assert!(text.contains("n=1"));
    }
}
