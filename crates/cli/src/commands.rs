//! Subcommand implementations.

use std::error::Error;
use std::fs;

use agile_core::{PlanMode, PowerPolicy};
use dcsim::report::{policy_comparison, series_csv, table};
use dcsim::{Experiment, FailureModel, Scenario, SimReport, SimulationBuilder};
use obs::{Json, SpanStat, SpanSummary};
use power::breakeven::{break_even_gap, net_energy_saved, LowPowerMode};
use power::HostPowerProfile;
use simcore::{SimDuration, SimTime};

use crate::args::{ArgError, Flags};

type CmdResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
agilepm — datacenter power-management simulator (ISCA'13 reproduction)

USAGE:
  agilepm run       simulate one policy and print a summary
  agilepm compare   run AlwaysOn / PM-OffOn / PM-Suspend / Oracle side by side
  agilepm sweep     run a parameter sweep (wake-latency | headroom | interval | reliability)
  agilepm breakeven print power-state characterization and break-even analysis
  agilepm perf-report FILE          render a per-phase attribution table
  agilepm perf-report diff A B      per-phase wall-time deltas between two runs
  agilepm help      show this help

COMMON FLAGS (run, compare):
  --hosts N            number of hosts               [default 32]
  --vms N              number of VMs                 [default 6*hosts]
  --seed N             scenario seed                 [default 2013]
  --hours N            simulated horizon in hours    [default 24]
  --interval-mins N    management interval           [default 5]
  --workload KIND      diurnal | spiky | churn | ladder  [default diurnal]
  --churn F            transient VM fraction (workload churn) [default 0.3]
  --threads N          worker threads for the sharded tick engine [default 1]

run-ONLY FLAGS:
  --policy P           always-on | suspend | off | oracle | ladder[:SECS]
                       [default suspend]; ladder parks drained hosts on the
                       deepest C6/S3/S5 rung that wakes within SECS (12)
  --plan-mode M        scan | indexed consolidation planning [default indexed]
                       (bit-identical reports; indexed keeps utilization-
                       bucket indices so picks stop scanning the fleet)
  --schedulers N       split the fleet across N concurrent schedulers over
                       the conflict-checked placement store [default 1;
                       1 is bit-identical to the global planner]
  --staleness R        scheduler views of foreign partitions lag R control
                       rounds behind ground truth [default 0]
  --resume-fail P      resume failure probability    [default 0]
  --json PATH          write the full report as JSON
  --csv PATH           write power/hosts-on/unserved series as CSV
  --events PATH        write the management audit log as CSV
  --trace-out PATH     stream telemetry as JSON Lines (constant memory):
                       power transitions, migrations, VM lifecycle,
                       manager decisions, and a final run summary
  --metrics            print the metrics registry snapshot after the run
  --profile            enable the hierarchical span tracer; the trace's
                       run-summary record then carries the span tree for
                       `perf-report` (timing never enters the report)

perf-report:
  reads a JSON Lines trace (the `--trace-out` file), a bare span-summary
  JSON object, or a scaleout bench artifact (BENCH_scaleout.json), and
  prints the attribution table. `diff` matches spans by call path and
  prints deltas sorted by magnitude, naming the biggest mover.

sweep FLAGS:
  --kind K             wake-latency | headroom | interval | reliability  [required]
  --hosts N, --vms N, --seed N   as above
  --csv PATH           also write the sweep as CSV

breakeven FLAGS:
  --profile NAME       rack | blade | legacy | ladder | blade-ladder  [default rack]
";

/// Routes a command line to its implementation.
pub fn dispatch(argv: &[String]) -> CmdResult {
    match argv.first().map(String::as_str) {
        Some("run") => run(&argv[1..]),
        Some("compare") => compare(&argv[1..]),
        Some("sweep") => sweep(&argv[1..]),
        Some("breakeven") => breakeven(&argv[1..]),
        Some("perf-report") => perf_report(&argv[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(Box::new(ArgError(format!("unknown command `{other}`")))),
    }
}

fn parse_policy(name: &str) -> Result<PowerPolicy, ArgError> {
    match name {
        "always-on" => Ok(PowerPolicy::always_on()),
        "suspend" => Ok(PowerPolicy::reactive_suspend()),
        "off" => Ok(PowerPolicy::reactive_off()),
        "oracle" => Ok(PowerPolicy::oracle()),
        // `ladder` parks each drained host on the deepest rung of its
        // C6→S3→S5 ladder that wakes within the SLO (default 12 s;
        // `ladder:SECS` overrides). Pair with `--workload ladder` so the
        // hosts actually carry the extra rungs.
        "ladder" => Ok(PowerPolicy::joint_ladder(SimDuration::from_secs(12))),
        other => {
            if let Some(secs) = other.strip_prefix("ladder:") {
                let secs: u64 = secs.parse().map_err(|_| {
                    ArgError(format!("bad wake SLO `{secs}` in `{other}` (want seconds)"))
                })?;
                if secs == 0 {
                    return Err(ArgError("wake SLO must be positive".to_string()));
                }
                return Ok(PowerPolicy::joint_ladder(SimDuration::from_secs(secs)));
            }
            Err(ArgError(format!(
                "unknown policy `{other}` (always-on | suspend | off | oracle | ladder[:SECS])"
            )))
        }
    }
}

fn parse_plan_mode(name: &str) -> Result<PlanMode, ArgError> {
    match name {
        "scan" => Ok(PlanMode::Scan),
        "indexed" => Ok(PlanMode::Indexed),
        other => Err(ArgError(format!(
            "unknown plan mode `{other}` (scan | indexed)"
        ))),
    }
}

fn build_scenario(flags: &Flags) -> Result<Scenario, ArgError> {
    let hosts = flags.usize_or("hosts", 32)?;
    let vms = flags.usize_or("vms", hosts * 6)?;
    let seed = flags.u64_or("seed", 2013)?;
    match flags.str_or("workload", "diurnal") {
        "diurnal" => Ok(Scenario::datacenter(hosts, vms, seed)),
        "spiky" => Ok(Scenario::datacenter_spiky(hosts, vms, seed)),
        "churn" => {
            let frac = flags.f64_or("churn", 0.3)?;
            Ok(Scenario::datacenter_churn(hosts, vms, frac, seed))
        }
        "ladder" => Ok(Scenario::datacenter_ladder(hosts, vms, seed)),
        other => Err(ArgError(format!(
            "unknown workload `{other}` (diurnal | spiky | churn | ladder)"
        ))),
    }
}

fn configure(
    flags: &Flags,
    scenario: Scenario,
    policy: PowerPolicy,
) -> Result<Experiment, ArgError> {
    let hours = flags.u64_or("hours", 24)?;
    let interval = flags.u64_or("interval-mins", 5)?;
    if interval == 0 {
        return Err(ArgError("`--interval-mins` must be positive".to_string()));
    }
    Ok(Experiment::new(scenario)
        .policy(policy)
        .horizon(SimDuration::from_hours(hours))
        .control_interval(SimDuration::from_mins(interval)))
}

fn run(args: &[String]) -> CmdResult {
    let flags = Flags::parse(
        args,
        &[
            "hosts",
            "vms",
            "seed",
            "hours",
            "interval-mins",
            "workload",
            "churn",
            "threads",
            "policy",
            "plan-mode",
            "schedulers",
            "staleness",
            "resume-fail",
            "json",
            "csv",
            "events",
            "trace-out",
        ],
        &["metrics", "profile"],
    )?;
    let policy = parse_policy(flags.str_or("policy", "suspend"))?;
    let plan_mode = parse_plan_mode(flags.str_or("plan-mode", "indexed"))?;
    let scenario = build_scenario(&flags)?;
    let resume_fail = flags.f64_or("resume-fail", 0.0)?;
    let mut experiment = configure(&flags, scenario, policy)?.plan_mode(plan_mode);
    let schedulers = flags.usize_or("schedulers", 1)?;
    let staleness = flags.usize_or("staleness", 0)?;
    if schedulers == 0 {
        return Err(Box::new(ArgError(
            "`--schedulers` must be positive".to_string(),
        )));
    }
    if schedulers > 1 || staleness > 0 {
        experiment = experiment.schedulers(schedulers).view_staleness(staleness);
    }
    if resume_fail > 0.0 {
        experiment = experiment.failure_model(FailureModel::new(resume_fail, 0.0));
    }
    if flags.str_opt("events").is_some() {
        experiment = experiment.record_events();
    }
    if let Some(path) = flags.str_opt("trace-out") {
        experiment = experiment.trace_path(path);
    }
    let threads = flags.usize_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError(
            "`--threads` must be positive".to_string(),
        )));
    }
    let report = SimulationBuilder::new(experiment)
        .threads(threads)
        .profiling(flags.switch("profile"))
        .run_report()?;
    print_summary(&report);
    if flags.switch("metrics") {
        print!("{}", report.metrics);
    }
    if let Some(path) = flags.str_opt("trace-out") {
        eprintln!("streamed trace to {path}");
    }

    if let Some(path) = flags.str_opt("json") {
        fs::write(path, report.to_json().to_string_pretty())?;
        eprintln!("wrote JSON report to {path}");
    }
    if let Some(path) = flags.str_opt("events") {
        fs::write(path, dcsim::events::events_csv(&report.events))?;
        eprintln!("wrote audit log to {path}");
    }
    if let Some(path) = flags.str_opt("csv") {
        let end = SimTime::ZERO + report.horizon;
        let csv = series_csv(
            &["power_w", "hosts_on", "unserved_cores"],
            &[
                &report.power_series,
                &report.hosts_on_series,
                &report.unserved_series,
            ],
            SimDuration::from_mins(5),
            end,
        );
        fs::write(path, csv)?;
        eprintln!("wrote CSV series to {path}");
    }
    Ok(())
}

fn print_summary(r: &SimReport) {
    let rows = vec![
        vec!["scenario".to_string(), r.scenario.clone()],
        vec!["policy".to_string(), r.policy.clone()],
        vec!["seed".to_string(), r.seed.to_string()],
        vec!["horizon".to_string(), format!("{}", r.horizon)],
        vec!["energy".to_string(), format!("{:.1} kWh", r.energy_kwh())],
        vec!["avg power".to_string(), format!("{:.0} W", r.avg_power_w())],
        vec!["peak power".to_string(), format!("{:.0} W", r.peak_power_w)],
        vec![
            "unserved demand".to_string(),
            format!("{:.4}%", r.unserved_ratio * 100.0),
        ],
        vec![
            "avg hosts on".to_string(),
            format!("{:.1} / {}", r.avg_hosts_on, r.num_hosts),
        ],
        vec![
            "latency stretch".to_string(),
            format!(
                "{:.2}x avg, {:.2}x peak",
                r.avg_latency_factor, r.peak_latency_factor
            ),
        ],
        vec!["migrations".to_string(), r.migrations.to_string()],
        vec![
            "power actions".to_string(),
            (r.power_ups + r.power_downs).to_string(),
        ],
        vec![
            "transition failures".to_string(),
            r.transition_failures.to_string(),
        ],
    ];
    print!("{}", table(&["metric", "value"], &rows));
}

fn compare(args: &[String]) -> CmdResult {
    let flags = Flags::parse(
        args,
        &[
            "hosts",
            "vms",
            "seed",
            "hours",
            "interval-mins",
            "workload",
            "churn",
            "threads",
        ],
        &[],
    )?;
    let scenario = build_scenario(&flags)?;
    let threads = flags.usize_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError(
            "`--threads` must be positive".to_string(),
        )));
    }
    let mut reports = Vec::new();
    for policy in [
        PowerPolicy::always_on(),
        PowerPolicy::reactive_off(),
        PowerPolicy::reactive_suspend(),
        PowerPolicy::oracle(),
    ] {
        let experiment = configure(&flags, scenario.clone(), policy)?;
        reports.push(
            SimulationBuilder::new(experiment)
                .threads(threads)
                .run_report()?,
        );
    }
    print!("{}", policy_comparison(&reports.iter().collect::<Vec<_>>()));
    Ok(())
}

fn sweep(args: &[String]) -> CmdResult {
    use dcsim::SweepBuilder;
    let flags = Flags::parse(args, &["kind", "hosts", "vms", "seed", "csv"], &[])?;
    let hosts = flags.usize_or("hosts", 16)?;
    let vms = flags.usize_or("vms", hosts * 6)?;
    let seed = flags.u64_or("seed", 2013)?;
    let kind = flags
        .str_opt("kind")
        .ok_or_else(|| ArgError("`--kind` is required for sweep".to_string()))?;

    // Each sweep reduces to (knob label, report) rows.
    let rows: Vec<(String, SimReport)> = match kind {
        "wake-latency" => {
            let latencies: Vec<SimDuration> = [1u64, 12, 60, 300, 600]
                .iter()
                .map(|&s| SimDuration::from_secs(s))
                .collect();
            SweepBuilder::wake_latency(hosts, vms, &latencies, seed)
                .run()?
                .into_iter()
                .map(|mut row| (format!("{}", row.value), row.reports.remove(0)))
                .collect()
        }
        "headroom" => {
            let targets = [0.55, 0.65, 0.75, 0.85];
            SweepBuilder::headroom(hosts, vms, &targets, LowPowerMode::Suspend, seed)
                .run()?
                .into_iter()
                .map(|mut row| (format!("{:.2}", row.value), row.reports.remove(0)))
                .collect()
        }
        "interval" => {
            let intervals: Vec<SimDuration> = [30u64, 60, 300, 900]
                .iter()
                .map(|&s| SimDuration::from_secs(s))
                .collect();
            SweepBuilder::interval(hosts, vms, &intervals, seed)
                .run()?
                .into_iter()
                .flat_map(|mut row| {
                    let s5 = row.reports.remove(1);
                    let s3 = row.reports.remove(0);
                    [
                        (format!("{} S3", row.value), s3),
                        (format!("{} S5", row.value), s5),
                    ]
                })
                .collect()
        }
        "reliability" => {
            let probs = [0.0, 0.02, 0.05, 0.1];
            SweepBuilder::reliability(hosts, vms, &probs, seed)
                .run()?
                .into_iter()
                .map(|mut row| (format!("{:.0}%", row.value * 100.0), row.reports.remove(0)))
                .collect()
        }
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown sweep kind `{other}` (wake-latency | headroom | interval | reliability)"
            ))))
        }
    };

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(knob, r)| {
            vec![
                knob.clone(),
                format!("{:.1}", r.energy_kwh()),
                format!("{:.4}%", r.unserved_ratio * 100.0),
                format!("{:.1}", r.migrations_per_hour),
                format!("{:.1}", r.power_actions_per_hour),
                format!("{:.1}", r.avg_hosts_on),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "knob",
                "energy kWh",
                "unserved",
                "migr/h",
                "pwr-act/h",
                "hosts-on"
            ],
            &table_rows
        )
    );

    if let Some(path) = flags.str_opt("csv") {
        let mut csv =
            String::from("knob,energy_kwh,unserved_ratio,migr_per_h,pwr_act_per_h,hosts_on\n");
        for (knob, r) in &rows {
            csv.push_str(&format!(
                "{},{},{},{},{},{}\n",
                knob,
                r.energy_kwh(),
                r.unserved_ratio,
                r.migrations_per_hour,
                r.power_actions_per_hour,
                r.avg_hosts_on
            ));
        }
        fs::write(path, csv)?;
        eprintln!("wrote CSV sweep to {path}");
    }
    Ok(())
}

fn breakeven(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, &["profile"], &[])?;
    let profile = match flags.str_or("profile", "rack") {
        "rack" => HostPowerProfile::prototype_rack(),
        "blade" => HostPowerProfile::prototype_blade(),
        "legacy" => HostPowerProfile::legacy_rack(),
        "ladder" => HostPowerProfile::prototype_rack_ladder(),
        "blade-ladder" => HostPowerProfile::prototype_blade_ladder(),
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown profile `{other}` (rack | blade | legacy | ladder | blade-ladder)"
            ))))
        }
    };
    println!("{profile}");
    let label = |mode| match mode {
        LowPowerMode::PackageIdle => "package-idle (C6)",
        LowPowerMode::Suspend => "suspend (S3)",
        LowPowerMode::Off => "off/boot (S5)",
    };
    for mode in LowPowerMode::ALL {
        match break_even_gap(&profile, mode) {
            Some(gap) => println!("{}: breaks even after {gap} idle", label(mode)),
            None => println!("{}: not supported by this profile", label(mode)),
        }
    }
    let rows: Vec<Vec<String>> = [60u64, 300, 900, 3600]
        .iter()
        .map(|&secs| {
            let gap = SimDuration::from_secs(secs);
            let fmt = |mode| match net_energy_saved(&profile, mode, gap) {
                Some(j) => format!("{:+.1} kJ", j / 1000.0),
                None => "infeasible".to_string(),
            };
            vec![
                format!("{gap}"),
                fmt(LowPowerMode::PackageIdle),
                fmt(LowPowerMode::Suspend),
                fmt(LowPowerMode::Off),
            ]
        })
        .collect();
    print!(
        "{}",
        table(&["idle gap", "package-idle", "suspend", "off"], &rows)
    );
    Ok(())
}

/// One labeled attribution section: a trace yields a single section, a
/// scaleout bench artifact yields one per fleet size.
struct PerfSection {
    label: String,
    summary: SpanSummary,
}

fn perf_report(args: &[String]) -> CmdResult {
    const USAGE: &str = "usage: agilepm perf-report FILE | agilepm perf-report diff A B";
    match args.first().map(String::as_str) {
        Some("diff") => match args {
            [_, a, b] => perf_diff(a, b),
            _ => Err(Box::new(ArgError(format!(
                "`perf-report diff` takes exactly two files\n{USAGE}"
            )))),
        },
        Some(path) if !path.starts_with('-') && args.len() == 1 => {
            for section in load_sections(path)? {
                println!("== {}", section.label);
                print!("{}", section.summary);
                print_attribution(&section.summary);
            }
            Ok(())
        }
        _ => Err(Box::new(ArgError(USAGE.to_string()))),
    }
}

/// For every top-level span that has named children, prints how much of
/// its wall time those children account for — the "is the attribution
/// complete?" headline.
fn print_attribution(summary: &SpanSummary) {
    for span in summary.spans.iter().filter(|s| s.depth == 1) {
        if summary.children_of(&span.path).is_empty() {
            continue;
        }
        if let Some(frac) = summary.attributed_fraction(&span.path) {
            println!(
                "{}: {:.1}% attributed to named sub-spans",
                span.name,
                frac * 100.0
            );
        }
    }
}

/// Per-path wall-time deltas between two runs, sorted by magnitude.
/// Sections are matched positionally (trace vs trace, or size-by-size
/// for two scaleout artifacts).
fn perf_diff(path_a: &str, path_b: &str) -> CmdResult {
    let a_sections = load_sections(path_a)?;
    let b_sections = load_sections(path_b)?;
    for (a, b) in a_sections.iter().zip(&b_sections) {
        println!("== {} vs {}", a.label, b.label);
        // Compare only down to the depth both sides recorded: a flat
        // phase baseline against a full span tree diffs at the phase
        // level instead of flagging every sub-span as new.
        let deepest = |s: &SpanSummary| s.spans.iter().map(|x| x.depth).max().unwrap_or(1);
        let cap = deepest(&a.summary).min(deepest(&b.summary));
        let mut paths: Vec<&str> = a
            .summary
            .spans
            .iter()
            .filter(|s| s.depth <= cap)
            .map(|s| s.path.as_str())
            .collect();
        for s in b.summary.spans.iter().filter(|s| s.depth <= cap) {
            if !paths.contains(&s.path.as_str()) {
                paths.push(&s.path);
            }
        }
        let secs =
            |summary: &SpanSummary, path: &str| summary.span(path).map_or(0.0, |s| s.total_secs);
        let mut rows: Vec<(String, f64, f64, f64)> = paths
            .iter()
            .map(|p| {
                let (sa, sb) = (secs(&a.summary, p), secs(&b.summary, p));
                (p.to_string(), sa, sb, sb - sa)
            })
            .collect();
        rows.sort_by(|x, y| y.3.abs().total_cmp(&x.3.abs()));
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(path, sa, sb, delta)| {
                let rel = if *sa > 0.0 {
                    format!("{:+.1}%", 100.0 * delta / sa)
                } else {
                    "new".to_string()
                };
                vec![
                    path.clone(),
                    format!("{sa:.3}"),
                    format!("{sb:.3}"),
                    format!("{delta:+.3}"),
                    rel,
                ]
            })
            .collect();
        print!(
            "{}",
            table(&["span", "a secs", "b secs", "delta", "rel"], &table_rows)
        );
        if let Some((path, sa, _, delta)) = rows.iter().find(|(_, _, _, d)| *d > 0.0) {
            let rel = if *sa > 0.0 {
                format!(" ({:+.1}%)", 100.0 * delta / sa)
            } else {
                String::new()
            };
            println!("biggest regression: {path} {delta:+.3} s{rel}");
        }
    }
    Ok(())
}

/// Loads attribution data from any artifact the toolchain produces: a
/// JSON Lines trace (uses the `run-summary` record's span tree, falling
/// back to the flat phase profile), a bare span-summary object, or a
/// scaleout bench artifact (`"runs"` with per-phase totals).
fn load_sections(path: &str) -> Result<Vec<PerfSection>, Box<dyn Error>> {
    let text = fs::read_to_string(path).map_err(|e| ArgError(format!("{path}: {e}")))?;
    for line in text.lines() {
        let Ok(record) = Json::parse(line) else {
            continue;
        };
        if record.get("record").and_then(Json::as_str) == Some("run-summary") {
            return Ok(vec![trace_section(&record)?]);
        }
    }
    let json = Json::parse(&text)
        .map_err(|e| ArgError(format!("{path}: not a trace or bench artifact: {e:?}")))?;
    // `runs` is a scaleout artifact; `baseline` is the checked-in perf
    // baseline — same per-entry shape, so both diff against each other.
    for key in ["runs", "baseline"] {
        if let Some(runs) = json.get(key).and_then(Json::as_array) {
            let sections: Result<Vec<_>, _> = runs.iter().map(scaleout_section).collect();
            let sections = sections?;
            if sections.is_empty() {
                return Err(Box::new(ArgError(format!("{path}: empty `{key}` array"))));
            }
            return Ok(sections);
        }
    }
    if json.get("spans").is_some() {
        return Ok(vec![PerfSection {
            label: path.to_string(),
            summary: SpanSummary::from_json(&json).map_err(|e| ArgError(format!("{e:?}")))?,
        }]);
    }
    Err(Box::new(ArgError(format!(
        "{path}: found neither a run-summary record, a span summary, nor a `runs` array"
    ))))
}

/// Builds a section from a trace's `run-summary` record. Prefers the
/// hierarchical span tree (present when the run was profiled); falls
/// back to the flat wall-clock phase profile.
fn trace_section(record: &Json) -> Result<PerfSection, Box<dyn Error>> {
    let label = format!(
        "{} / {}",
        record.get("scenario").and_then(Json::as_str).unwrap_or("?"),
        record.get("policy").and_then(Json::as_str).unwrap_or("?"),
    );
    let summary = match record.get("spans") {
        Some(spans) if *spans != Json::Null => {
            SpanSummary::from_json(spans).map_err(|e| ArgError(format!("{e:?}")))?
        }
        _ => {
            let profile = record
                .get("profile")
                .ok_or_else(|| ArgError("run-summary has no profile".to_string()))?;
            flat_summary_from_profile(profile)?
        }
    };
    Ok(PerfSection { label, summary })
}

/// Converts a `ProfileSummary` JSON rendering into a depth-1 span
/// summary so the report and diff paths are uniform.
fn flat_summary_from_profile(profile: &Json) -> Result<SpanSummary, Box<dyn Error>> {
    let wall_secs = profile
        .get("wall_secs")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let phases = profile
        .get("phases")
        .and_then(Json::as_array)
        .ok_or_else(|| ArgError("profile has no `phases` array".to_string()))?;
    let spans = phases
        .iter()
        .map(|p| {
            let name = p
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            let total_secs = p.get("total_secs").and_then(Json::as_f64).unwrap_or(0.0);
            SpanStat {
                path: name.clone(),
                name,
                depth: 1,
                calls: p.get("calls").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                total_secs,
                self_secs: total_secs,
            }
        })
        .collect();
    Ok(SpanSummary { spans, wall_secs })
}

/// Builds a section from one entry of a scaleout artifact's `runs`
/// array. Uses the embedded span tree when present, else the flat
/// per-phase totals.
fn scaleout_section(run: &Json) -> Result<PerfSection, Box<dyn Error>> {
    let hosts = run.get("hosts").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let label = format!("hosts={hosts}");
    if let Some(spans) = run.get("spans") {
        if *spans != Json::Null {
            return Ok(PerfSection {
                label,
                summary: SpanSummary::from_json(spans).map_err(|e| ArgError(format!("{e:?}")))?,
            });
        }
    }
    let phases = run
        .get("phases")
        .and_then(Json::as_object)
        .ok_or_else(|| ArgError(format!("{label}: run has neither spans nor phases")))?;
    let spans: Vec<SpanStat> = phases
        .iter()
        .map(|(name, secs)| {
            let total_secs = secs.as_f64().unwrap_or(0.0);
            SpanStat {
                path: name.clone(),
                name: name.clone(),
                depth: 1,
                calls: 0,
                total_secs,
                self_secs: total_secs,
            }
        })
        .collect();
    let wall_secs = run
        .get("wall_secs")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| spans.iter().map(|s| s.total_secs).sum());
    Ok(PerfSection {
        label,
        summary: SpanSummary { spans, wall_secs },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(
            parse_policy("suspend").unwrap(),
            PowerPolicy::reactive_suspend()
        );
        assert_eq!(parse_policy("oracle").unwrap(), PowerPolicy::oracle());
        assert!(parse_policy("s3").is_err());
    }

    #[test]
    fn run_small_scenario_end_to_end() {
        dispatch(&argv(&[
            "run", "--hosts", "4", "--vms", "12", "--hours", "2", "--policy", "suspend",
        ]))
        .expect("small run succeeds");
    }

    #[test]
    fn run_with_threads_flag() {
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "12",
            "--hours",
            "2",
            "--threads",
            "2",
        ]))
        .expect("sharded run succeeds");
        assert!(
            dispatch(&argv(&["run", "--hosts", "4", "--threads", "0"])).is_err(),
            "zero threads must be rejected"
        );
    }

    #[test]
    fn run_with_scheduler_flags() {
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "12",
            "--hours",
            "2",
            "--schedulers",
            "2",
            "--staleness",
            "1",
        ]))
        .expect("distributed run succeeds");
        assert!(
            dispatch(&argv(&["run", "--hosts", "4", "--schedulers", "0"])).is_err(),
            "zero schedulers must be rejected"
        );
        assert!(
            dispatch(&argv(&["run", "--hosts", "4", "--schedulers", "8"])).is_err(),
            "more schedulers than hosts must be rejected"
        );
    }

    #[test]
    fn run_with_json_and_csv_outputs() {
        let dir = std::env::temp_dir().join("agilepm-cli-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let json = dir.join("r.json");
        let csv = dir.join("r.csv");
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "12",
            "--hours",
            "2",
            "--json",
            json.to_str().expect("utf8 path"),
            "--csv",
            csv.to_str().expect("utf8 path"),
        ]))
        .expect("run with outputs succeeds");
        let text = fs::read_to_string(&json).expect("json written");
        let report = dcsim::SimReport::from_json(&obs::Json::parse(&text).expect("valid JSON"))
            .expect("report round-trips");
        assert!(report.energy_j > 0.0);
        let csv_text = fs::read_to_string(&csv).expect("csv written");
        assert!(csv_text.starts_with("t_hours,power_w,hosts_on,unserved_cores"));
    }

    #[test]
    fn run_with_trace_and_metrics() {
        let dir = std::env::temp_dir().join("agilepm-cli-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let trace = dir.join("trace.jsonl");
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "12",
            "--hours",
            "2",
            "--trace-out",
            trace.to_str().expect("utf8 path"),
            "--metrics",
        ]))
        .expect("run with trace succeeds");
        let text = fs::read_to_string(&trace).expect("trace written");
        assert!(text.lines().count() > 1, "trace should stream records");
        for line in text.lines() {
            let record = obs::Json::parse(line).expect("each line is valid JSON");
            assert!(
                record.get("record").is_some(),
                "records carry a discriminator"
            );
        }
    }

    #[test]
    fn sweep_kinds() {
        dispatch(&argv(&[
            "sweep", "--kind", "headroom", "--hosts", "4", "--vms", "16",
        ]))
        .expect("headroom sweep runs");
        assert!(dispatch(&argv(&["sweep", "--kind", "bogus"])).is_err());
        assert!(dispatch(&argv(&["sweep"])).is_err());
    }

    #[test]
    fn run_with_event_log() {
        let dir = std::env::temp_dir().join("agilepm-cli-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.csv");
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "16",
            "--hours",
            "4",
            "--events",
            path.to_str().expect("utf8 path"),
        ]))
        .expect("run with audit log succeeds");
        let text = fs::read_to_string(&path).expect("log written");
        assert!(text.starts_with("t_seconds,event"));
        assert!(text.lines().count() > 1, "log should have entries");
    }

    #[test]
    fn breakeven_profiles() {
        for p in ["rack", "blade", "legacy", "ladder", "blade-ladder"] {
            dispatch(&argv(&["breakeven", "--profile", p])).expect("profile prints");
        }
        assert!(dispatch(&argv(&["breakeven", "--profile", "toaster"])).is_err());
    }

    #[test]
    fn ladder_policy_and_workload() {
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "12",
            "--hours",
            "2",
            "--workload",
            "ladder",
            "--policy",
            "ladder:30",
        ]))
        .expect("joint-ladder run succeeds");
        assert!(dispatch(&argv(&["run", "--policy", "ladder:oops"])).is_err());
        assert!(dispatch(&argv(&["run", "--policy", "ladder:0"])).is_err());
    }

    #[test]
    fn compare_small() {
        dispatch(&argv(&[
            "compare", "--hosts", "4", "--vms", "12", "--hours", "2",
        ]))
        .expect("compare succeeds");
    }

    #[test]
    fn perf_report_renders_and_diffs_profiled_traces() {
        let dir = std::env::temp_dir().join("agilepm-cli-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let a = dir.join("perf_a.jsonl");
        let b = dir.join("perf_b.jsonl");
        for (path, seed) in [(&a, "1"), (&b, "2")] {
            dispatch(&argv(&[
                "run",
                "--hosts",
                "4",
                "--vms",
                "12",
                "--hours",
                "2",
                "--seed",
                seed,
                "--profile",
                "--trace-out",
                path.to_str().expect("utf8 path"),
            ]))
            .expect("profiled run succeeds");
        }
        let a = a.to_str().expect("utf8 path");
        let b = b.to_str().expect("utf8 path");
        dispatch(&argv(&["perf-report", a])).expect("attribution table renders");
        dispatch(&argv(&["perf-report", "diff", a, b])).expect("diff renders");
        assert!(dispatch(&argv(&["perf-report"])).is_err());
        assert!(dispatch(&argv(&["perf-report", "diff", a])).is_err());
        assert!(dispatch(&argv(&["perf-report", "/nonexistent/trace.jsonl"])).is_err());
    }

    #[test]
    fn perf_report_loads_traces_spans_and_bench_artifacts() {
        let dir = std::env::temp_dir().join("agilepm-cli-test");
        fs::create_dir_all(&dir).expect("temp dir");

        // A profiled trace exposes the hierarchical span tree.
        let trace = dir.join("perf_sections.jsonl");
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "12",
            "--hours",
            "2",
            "--profile",
            "--trace-out",
            trace.to_str().expect("utf8 path"),
        ]))
        .expect("profiled run succeeds");
        let text = fs::read_to_string(&trace).expect("trace written");
        let summary_line = text
            .lines()
            .find(|l| l.contains("\"run-summary\""))
            .expect("trace has a run-summary");
        let record = obs::Json::parse(summary_line).expect("valid JSON");
        let spans = record.get("spans").expect("summary carries spans");
        assert!(*spans != obs::Json::Null, "profiled run must emit spans");
        let sections = load_sections(trace.to_str().expect("utf8 path")).expect("trace loads");
        assert_eq!(sections.len(), 1);
        assert!(
            sections[0].summary.span("plan").is_some(),
            "span tree has the plan phase"
        );

        // A bare span-summary object loads too.
        let bare = dir.join("perf_bare.json");
        fs::write(&bare, spans.to_string_pretty()).expect("write span summary");
        let sections = load_sections(bare.to_str().expect("utf8 path")).expect("bare loads");
        assert!(sections[0].summary.wall_secs >= 0.0);

        // And a scaleout-shaped artifact yields one section per size.
        let bench = dir.join("perf_bench.json");
        fs::write(
            &bench,
            r#"{"runs": [
                {"hosts": 64, "wall_secs": 1.0, "phases": {"plan": 0.6, "execute": 0.2}},
                {"hosts": 256, "wall_secs": 4.0, "phases": {"plan": 2.9, "execute": 0.7}}
            ]}"#,
        )
        .expect("write bench artifact");
        let sections = load_sections(bench.to_str().expect("utf8 path")).expect("bench loads");
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[1].label, "hosts=256");
        assert_eq!(
            sections[1].summary.span("plan").map(|s| s.total_secs),
            Some(2.9)
        );
        dispatch(&argv(&[
            "perf-report",
            "diff",
            bench.to_str().expect("utf8 path"),
            bench.to_str().expect("utf8 path"),
        ]))
        .expect("self-diff renders");
    }

    #[test]
    fn churn_workload_flag() {
        dispatch(&argv(&[
            "run",
            "--hosts",
            "4",
            "--vms",
            "12",
            "--hours",
            "2",
            "--workload",
            "churn",
            "--churn",
            "0.5",
        ]))
        .expect("churn run succeeds");
        assert!(dispatch(&argv(&["run", "--workload", "bogus"])).is_err());
    }
}
