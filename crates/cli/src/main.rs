//! `agilepm` — command-line front end for the simulator.
//!
//! ```text
//! agilepm run      --hosts 64 --vms 384 --policy suspend [--json out.json] [--csv out.csv]
//! agilepm compare  --hosts 32 --vms 192 [--workload spiky]
//! agilepm breakeven [--profile rack|blade|legacy]
//! agilepm help
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `agilepm help` for usage");
            ExitCode::FAILURE
        }
    }
}
