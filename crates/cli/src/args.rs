//! Minimal, dependency-free flag parsing.
//!
//! Flags are `--name value` pairs, plus valueless boolean switches
//! (`--metrics`); unknown flags are errors so typos surface instead of
//! silently using defaults.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Parsed `--flag value` pairs and boolean switches.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

/// A user-facing argument error.
#[derive(Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Flags {
    /// Parses `--name value` pairs (names in `allowed`) and valueless
    /// boolean switches (names in `switches`), rejecting anything else.
    pub fn parse(args: &[String], allowed: &[&str], switches: &[&str]) -> Result<Flags, ArgError> {
        let mut values = BTreeMap::new();
        let mut seen_switches = BTreeSet::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected argument `{arg}`")));
            };
            if switches.contains(&name) {
                if !seen_switches.insert(name.to_string()) {
                    return Err(ArgError(format!("flag `--{name}` given twice")));
                }
                continue;
            }
            if !allowed.contains(&name) {
                return Err(ArgError(format!(
                    "unknown flag `--{name}` (expected one of: {})",
                    allowed
                        .iter()
                        .chain(switches)
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let Some(value) = it.next() else {
                return Err(ArgError(format!("flag `--{name}` needs a value")));
            };
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("flag `--{name}` given twice")));
            }
        }
        Ok(Flags {
            values,
            switches: seen_switches,
        })
    }

    /// Whether a boolean switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// String flag with a default.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.values.get(name).map(String::as_str).unwrap_or(default)
    }

    /// Optional string flag.
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Integer flag with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("`--{name}` expects an integer, got `{v}`"))),
        }
    }

    /// u64 flag with a default.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("`--{name}` expects an integer, got `{v}`"))),
        }
    }

    /// Float flag with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("`--{name}` expects a number, got `{v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(
            &argv(&["--hosts", "8", "--policy", "suspend"]),
            &["hosts", "policy"],
            &[],
        )
        .unwrap();
        assert_eq!(f.usize_or("hosts", 1).unwrap(), 8);
        assert_eq!(f.str_or("policy", "x"), "suspend");
        assert_eq!(f.usize_or("vms", 99).unwrap(), 99);
    }

    #[test]
    fn parses_switches() {
        let f = Flags::parse(
            &argv(&["--metrics", "--hosts", "4"]),
            &["hosts"],
            &["metrics", "profile"],
        )
        .unwrap();
        assert!(f.switch("metrics"));
        assert!(!f.switch("profile"));
        assert_eq!(f.usize_or("hosts", 1).unwrap(), 4);
        // A switch never consumes the next token as a value.
        let f = Flags::parse(&argv(&["--metrics"]), &[], &["metrics"]).unwrap();
        assert!(f.switch("metrics"));
        let e = Flags::parse(&argv(&["--metrics", "--metrics"]), &[], &["metrics"]).unwrap_err();
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn rejects_unknown_flag() {
        let e = Flags::parse(&argv(&["--bogus", "1"]), &["hosts"], &[]).unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let e = Flags::parse(&argv(&["--hosts"]), &["hosts"], &[]).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
    }

    #[test]
    fn rejects_duplicates_and_bad_numbers() {
        let e =
            Flags::parse(&argv(&["--hosts", "1", "--hosts", "2"]), &["hosts"], &[]).unwrap_err();
        assert!(e.to_string().contains("twice"));
        let f = Flags::parse(&argv(&["--hosts", "abc"]), &["hosts"], &[]).unwrap();
        assert!(f.usize_or("hosts", 1).is_err());
    }
}
