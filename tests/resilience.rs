//! Integration tests combining the resilience features: fault injection,
//! lifecycle churn, audit logging, and their interactions.

use agilepm::core::{ClusterObservation, HostObservation, RecoveryConfig, RecoveryTracker};
use agilepm::prelude::*;
use agilepm::sim::events::EventKind;
use check::{gen, prop_assert};
use check_support::{check_report, experiment_spec, failure_spec};

#[test]
fn failures_churn_and_audit_log_compose() {
    // All the hard modes at once: transient VMs, resume failures, spiky
    // demand, agile loop, full audit trail.
    let scenario = Scenario::datacenter_churn(8, 48, 0.4, 77);
    let report = SimulationBuilder::new(
        Experiment::new(scenario)
            .policy(PowerPolicy::reactive_suspend())
            .failure_model(FailureModel::new(0.1, 0.02))
            .control_interval(SimDuration::from_mins(1))
            .record_events(),
    )
    .run_report()
    .expect("hard-mode scenario runs");

    // The run completed with sane outputs.
    assert!(report.energy_j > 0.0);
    assert!(report.unserved_ratio < 0.05);
    assert!(!report.events.is_empty());

    // The audit log is time-ordered and internally consistent.
    assert!(report.events.windows(2).all(|w| w[0].time <= w[1].time));
    let failed = report
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PowerFailed { .. }))
        .count() as u64;
    assert_eq!(failed, report.transition_failures);

    // Churn shows in the log: arrivals and departures both happened.
    let arrivals = report
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::VmArrived { .. }))
        .count();
    let departures = report
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::VmDeparted { .. }))
        .count();
    assert!(arrivals > 0, "transient VMs should arrive");
    assert!(departures > 0, "transient VMs should depart");
}

#[test]
fn resume_failures_force_recovery_boots() {
    // With a high failure rate on a suspend-heavy day, the log must show
    // the recovery path: PowerFailed followed eventually by a boot.
    let scenario = Scenario::datacenter(8, 48, 31);
    let report = SimulationBuilder::new(
        Experiment::new(scenario)
            .policy(PowerPolicy::reactive_suspend())
            .failure_model(FailureModel::new(0.5, 0.0))
            .control_interval(SimDuration::from_mins(1))
            .record_events(),
    )
    .run_report()
    .expect("scenario runs");
    // Whether any failures fired is seed-dependent; what must hold is
    // that the log agrees with the counter and service quality survived.
    let logged_failures = report
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PowerFailed { .. }))
        .count() as u64;
    assert_eq!(logged_failures, report.transition_failures);
    assert!(
        report.unserved_ratio < 0.02,
        "failures degraded service to {:.4}%",
        report.unserved_ratio * 100.0
    );
    // A stranded host never serves again without a boot: if the fleet
    // needed it back, a boot must appear after the failure.
    if report.transition_failures > 0 {
        let first_failure = report
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::PowerFailed { .. }))
            .expect("counted above")
            .time;
        let boots_after = report
            .events
            .iter()
            .filter(|e| {
                e.time >= first_failure
                    && matches!(
                        e.kind,
                        EventKind::PowerStarted {
                            kind: agilepm::power::TransitionKind::Boot,
                            ..
                        }
                    )
            })
            .count();
        // The manager wanted that capacity (it tried to resume), so the
        // recovery boot should follow.
        assert!(boots_after > 0, "no recovery boot after a failed resume");
    }
}

/// For any generated world and any failure probabilities in [0, 0.5),
/// the audit ledger stays exact — every injected failure is logged as a
/// `PowerFailed` event, and the counter agrees — and service quality
/// stays bounded despite the faults.
#[test]
fn generated_failure_models_keep_the_ledger_and_service_quality() {
    let input = experiment_spec().zip(&failure_spec(499));
    check::check(
        "failure ledger and service quality",
        &input,
        |(spec, failures)| {
            let scenario = spec.scenario.build();
            let report = check_support::run_experiment(
                spec.experiment()
                    .failure_model(failures.build())
                    .record_events(),
            )
            .map_err(|e| format!("{spec:?}: run failed: {e:?}"))?;
            // The full catalog, which includes the PowerFailed-vs-counter
            // ledger check; repeat the count here so a violation names it.
            check_report(&scenario, &report)?;
            let count = |pred: fn(&EventKind) -> bool| {
                report.events.iter().filter(|e| pred(&e.kind)).count() as u64
            };
            check::prop_assert_eq!(
                count(|k| matches!(k, EventKind::PowerFailed { .. })),
                report.transition_failures
            );
            check::prop_assert_eq!(
                count(|k| matches!(k, EventKind::MigrationFailed { .. })),
                report.migration_failures
            );
            check::prop_assert_eq!(
                count(|k| matches!(k, EventKind::PowerStuck { .. })),
                report.hung_transitions
            );
            check::prop_assert_eq!(
                count(|k| matches!(k, EventKind::VmArrivalRejected { .. })),
                report.rejected_admissions
            );
            prop_assert!(
                report.unserved_ratio <= 0.05,
                "failures at ({}, {}) permille degraded service to {:.4}%",
                failures.resume_permille,
                failures.boot_permille,
                report.unserved_ratio * 100.0
            );
            Ok(())
        },
    );
}

/// Joint-ladder worlds under fault injection: park/unpark is
/// resume-class hardware work, so quarantine, fail-safe rounds, and the
/// recovery boot path must hold at every rung the SLO admits. The final
/// cluster is captured so the per-state energy breakdown — which now
/// includes the Parking/Unparking residencies — can be audited too.
#[test]
fn joint_ladder_survives_fault_injection() {
    use check_support::{check_cluster, check_energy_breakdown, ladder_policy};
    let input = experiment_spec()
        .zip(&ladder_policy())
        .zip(&failure_spec(499));
    check::check_cases(
        "joint-ladder under faults",
        32,
        &input,
        |((spec, policy), failures)| {
            let mut spec = *spec;
            spec.scenario.workload = check_support::WorkloadKind::Ladder;
            let scenario = spec.scenario.build();
            let out = SimulationBuilder::new(
                spec.experiment()
                    .policy(*policy)
                    .failure_model(failures.build())
                    .record_events(),
            )
            .threads(check_support::sim_threads())
            .capture_cluster(true)
            .build()
            .map_err(|e| format!("{spec:?}: build failed: {e:?}"))?
            .run()
            .map_err(|e| format!("{spec:?}: run failed: {e:?}"))?;
            check_report(&scenario, &out.report)?;
            let cluster = out.cluster.ok_or("cluster capture requested but absent")?;
            check_cluster(&cluster)?;
            check_energy_breakdown(&cluster)?;
            prop_assert!(
                out.report.unserved_ratio <= 0.05,
                "{policy:?} with failures at ({}, {}) permille degraded service to {:.4}%",
                failures.resume_permille,
                failures.boot_permille,
                out.report.unserved_ratio * 100.0
            );
            Ok(())
        },
    );
}

/// For any generated failure schedule, every host that stops failing is
/// eventually readmitted to service (free to power-cycle again), and any
/// host still quarantined got there through a release time that only
/// ever moved *later* — never earlier — while quarantined.
#[test]
fn failing_hosts_eventually_return_or_stay_quarantined() {
    // A schedule is, per host, the set of 5-minute rounds (out of 24)
    // in which one transition failure lands.
    let schedule = gen::usize_in(1..=4).zip(&gen::vec_of(
        &gen::u64_in(0..=23).zip(&gen::u64_in(0..=3)),
        0..=16,
    ));
    check::check(
        "failing hosts return or stay quarantined",
        &schedule,
        |(num_hosts, failures)| {
            let num_hosts = *num_hosts;
            let config = RecoveryConfig::new();
            let mut tracker = RecoveryTracker::new(config.clone(), num_hosts);
            let mut cumulative = vec![0u64; num_hosts];
            let mut last_release = vec![None; num_hosts];
            let observe = |tracker: &mut RecoveryTracker, now: SimTime, cumulative: &[u64]| {
                let hosts = cumulative
                    .iter()
                    .enumerate()
                    .map(|(i, &failed)| HostObservation {
                        id: HostId(i as u32),
                        state: PowerState::On,
                        pending: None,
                        cpu_capacity: 8.0,
                        mem_capacity: 64.0,
                        mem_committed: 0.0,
                        cpu_demand: 0.0,
                        evacuated: true,
                        failed_transitions: failed,
                        ladder: Default::default(),
                    })
                    .collect();
                tracker.observe(&ClusterObservation {
                    now,
                    hosts,
                    vms: Vec::new(),
                });
            };
            // Phase 1: 24 rounds with the generated failures landing.
            for round in 0..24u64 {
                for &(r, host) in failures {
                    if r == round && (host as usize) < num_hosts {
                        cumulative[host as usize] += 1;
                    }
                }
                let now = SimTime::from_secs(round * 300);
                observe(&mut tracker, now, &cumulative);
                for (h, last) in last_release.iter_mut().enumerate() {
                    let release = tracker.quarantine_release(h);
                    if let (Some(prev), Some(cur)) = (*last, release) {
                        prop_assert!(
                            cur >= prev,
                            "host {h}: quarantine release moved earlier ({cur} < {prev})"
                        );
                    }
                    *last = release;
                }
            }
            // Phase 2: failures stop. After probation plus the longest
            // backoff, every host must be back in service.
            let quiet = SimTime::from_secs(24 * 300)
                + config.probation()
                + config.backoff_cap()
                + SimDuration::from_mins(5);
            observe(&mut tracker, quiet, &cumulative);
            for h in 0..num_hosts {
                prop_assert!(
                    tracker.may_power_cycle(h, quiet),
                    "host {h} never returned to service after failures stopped"
                );
            }
            Ok(())
        },
    );
}

/// Runs with recovery active and heavy fault injection stay bit-exactly
/// reproducible: same seed, same report, byte-identical JSON.
#[test]
fn recovery_under_injection_is_bit_reproducible() {
    let run = || {
        SimulationBuilder::new(
            Experiment::new(Scenario::datacenter_churn(8, 40, 0.3, 55))
                .policy(PowerPolicy::reactive_suspend())
                .failure_model(
                    FailureModel::new(0.3, 0.1)
                        .with_migration_failures(0.15)
                        .with_hangs(0.1, 4.0)
                        .with_rack_bursts(4, 0.02, SimDuration::from_mins(30)),
                )
                .control_interval(SimDuration::from_mins(1))
                .record_events(),
        )
        .run_report()
        .expect("faulty run completes")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "recovery made the run non-deterministic");
    assert_eq!(
        a.to_json().to_string_compact(),
        b.to_json().to_string_compact()
    );
    // The hard modes actually fired.
    assert!(a.transition_failures > 0, "no transition failures injected");
    assert!(a.events.iter().any(|e| matches!(
        e.kind,
        EventKind::MigrationFailed { .. } | EventKind::PowerStuck { .. }
    )));
}

#[test]
fn report_round_trips_through_json() {
    let report = SimulationBuilder::new(
        Experiment::new(Scenario::small_test(3))
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(4))
            .record_events(),
    )
    .run_report()
    .expect("scenario runs");
    let json = report.to_json().to_string_compact();
    let back = SimReport::from_json(&agilepm::obs::Json::parse(&json).expect("valid JSON"))
        .expect("report deserializes");
    // Floats are written with shortest-round-trip formatting and times
    // as integral milliseconds, so the round-trip is exact.
    assert_eq!(back, report);
    let json2 = back.to_json().to_string_compact();
    assert_eq!(json2, json, "serialization must be stable");
}

#[test]
fn per_class_ratios_are_consistent_with_total() {
    let report = SimulationBuilder::new(
        Experiment::new(Scenario::datacenter_spiky(8, 48, 3))
            .policy(PowerPolicy::reactive_suspend())
            .control_interval(SimDuration::from_mins(1)),
    )
    .run_report()
    .expect("scenario runs");
    // Interactive is served first, so its unserved ratio can never exceed
    // batch's under this workload (both tiers present on every host mix).
    assert!(
        report.unserved_interactive_ratio <= report.unserved_batch_ratio + 1e-9,
        "interactive {} > batch {}",
        report.unserved_interactive_ratio,
        report.unserved_batch_ratio
    );
    // The total sits between the per-class extremes.
    let lo = report
        .unserved_interactive_ratio
        .min(report.unserved_batch_ratio);
    let hi = report
        .unserved_interactive_ratio
        .max(report.unserved_batch_ratio);
    assert!(report.unserved_ratio >= lo - 1e-9 && report.unserved_ratio <= hi + 1e-9);
}
