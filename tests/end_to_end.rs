//! End-to-end integration tests spanning the whole workspace: scenario
//! generation → simulation → report.

use agilepm::core::{ManagerConfig, PowerPolicy, PredictorConfig};
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::SimDuration;

#[test]
fn full_pipeline_is_bit_reproducible() {
    let run = || {
        SimulationBuilder::new(
            Experiment::new(Scenario::datacenter(8, 48, 123))
                .policy(PowerPolicy::reactive_suspend())
                .horizon(SimDuration::from_hours(8)),
        )
        .run_report()
        .expect("scenario runs")
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        SimulationBuilder::new(
            Experiment::new(Scenario::datacenter(8, 48, seed))
                .policy(PowerPolicy::reactive_suspend())
                .horizon(SimDuration::from_hours(8)),
        )
        .run_report()
        .expect("scenario runs")
    };
    assert_ne!(run(1).energy_j, run(2).energy_j);
}

#[test]
fn report_internal_consistency() {
    let r = SimulationBuilder::new(
        Experiment::new(Scenario::datacenter(8, 48, 9))
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(12)),
    )
    .run_report()
    .expect("scenario runs");

    // Energy must agree with the sampled power trace to within the
    // trace's step-function resolution.
    let series_j = r
        .power_series
        .integral_until(agilepm::simcore::SimTime::ZERO + r.horizon);
    let rel = (series_j - r.energy_j).abs() / r.energy_j;
    assert!(rel < 0.02, "power-series energy off by {:.2}%", rel * 100.0);

    // Bounded quantities stay in bounds.
    assert!((0.0..=1.0).contains(&r.violation_fraction));
    assert!((0.0..=1.0).contains(&r.unserved_ratio));
    assert!(r.avg_hosts_on <= r.num_hosts as f64 + 1e-9);
    assert!(r.avg_util_on <= 1.0 + 1e-9);
    assert!(r.peak_power_w <= r.num_hosts as f64 * 315.0 * 1.01);
    assert!((0.0..=1.0).contains(&r.migration_overhead_frac));
    assert!((0.0..=1.0).contains(&r.transition_overhead_frac));

    // Every power-down must be matched by at most one outstanding
    // power-up difference (hosts end on or parked, never lost).
    assert!(r.power_ups <= r.power_downs + r.num_hosts as u64);
}

#[test]
fn explicit_manager_config_changes_behaviour() {
    let scenario = Scenario::datacenter(8, 48, 4);
    let aggressive = SimulationBuilder::new(
        Experiment::new(scenario.clone())
            .manager_config(
                ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), 8, 48)
                    .with_target_utilization(0.85)
                    .with_spare_hosts(1)
                    .with_predictor(PredictorConfig::LastValue),
            )
            .horizon(SimDuration::from_hours(12)),
    )
    .run_report()
    .expect("scenario runs");
    let conservative = SimulationBuilder::new(
        Experiment::new(scenario)
            .manager_config(
                ManagerConfig::for_fleet(PowerPolicy::reactive_suspend(), 8, 48)
                    .with_target_utilization(0.55)
                    .with_underload_threshold(0.4)
                    .with_spare_hosts(2),
            )
            .horizon(SimDuration::from_hours(12)),
    )
    .run_report()
    .expect("scenario runs");
    // Tighter packing with fewer spares must keep fewer hosts on.
    assert!(
        aggressive.avg_hosts_on < conservative.avg_hosts_on,
        "aggressive {} vs conservative {}",
        aggressive.avg_hosts_on,
        conservative.avg_hosts_on
    );
}

#[test]
fn control_interval_changes_granularity_not_sanity() {
    let scenario = Scenario::datacenter(8, 48, 5);
    for mins in [1u64, 5] {
        let r = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(PowerPolicy::reactive_suspend())
                .control_interval(SimDuration::from_mins(mins))
                .horizon(SimDuration::from_hours(6)),
        )
        .run_report()
        .expect("scenario runs");
        assert!(r.energy_j > 0.0);
        assert!(r.unserved_ratio < 0.05);
    }
}

#[test]
fn legacy_hardware_still_power_manages_via_off() {
    use agilepm::power::HostPowerProfile;
    let scenario =
        Scenario::datacenter(8, 48, 6).with_host_profile(HostPowerProfile::legacy_rack());
    // Suspend-based policy on suspend-less hardware: every park attempt
    // is rejected by the cluster, counted as stale, and the sim completes.
    let r = SimulationBuilder::new(
        Experiment::new(scenario.clone())
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(6)),
    )
    .run_report()
    .expect("scenario runs");
    assert_eq!(r.power_series.min().map(|v| v > 0.0), Some(true));
    // Off-based policy works on the same hardware.
    let r2 = SimulationBuilder::new(
        Experiment::new(scenario)
            .policy(PowerPolicy::reactive_off())
            .horizon(SimDuration::from_hours(6)),
    )
    .run_report()
    .expect("scenario runs");
    assert!(r2.power_downs > 0);
}
