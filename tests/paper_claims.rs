//! The abstract's three quantitative claims, checked as integration tests
//! at moderate scale. These are the "shape" results the reproduction must
//! preserve (see DESIGN.md).

use agilepm::core::PowerPolicy;
use agilepm::power::breakeven::{break_even_gap, LowPowerMode};
use agilepm::power::HostPowerProfile;
use agilepm::sim::SweepBuilder;
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::SimDuration;

/// Claim 1: low-latency power states have dramatically lower transition
/// latency and energy than traditional power cycling.
#[test]
fn claim1_low_latency_states_are_orders_of_magnitude_cheaper() {
    for profile in [
        HostPowerProfile::prototype_rack(),
        HostPowerProfile::prototype_blade(),
    ] {
        let t = profile.transitions();
        let s3_latency = t
            .spec(agilepm::power::TransitionKind::Suspend)
            .expect("prototypes support suspend")
            .latency()
            + t.spec(agilepm::power::TransitionKind::Resume)
                .expect("prototypes support resume")
                .latency();
        let s5_latency = t
            .spec(agilepm::power::TransitionKind::Shutdown)
            .expect("always present")
            .latency()
            + t.spec(agilepm::power::TransitionKind::Boot)
                .expect("always present")
                .latency();
        assert!(
            s5_latency.as_secs_f64() / s3_latency.as_secs_f64() > 10.0,
            "{}: S5 cycle only {:.1}x slower",
            profile.name(),
            s5_latency.as_secs_f64() / s3_latency.as_secs_f64()
        );
        // Break-even gaps differ by an order of magnitude.
        let s3_gap = break_even_gap(&profile, LowPowerMode::Suspend).expect("suspend supported");
        let s5_gap = break_even_gap(&profile, LowPowerMode::Off).expect("off supported");
        assert!(
            s5_gap.as_secs_f64() / s3_gap.as_secs_f64() > 10.0,
            "{}: break-even ratio only {:.1}x",
            profile.name(),
            s5_gap.as_secs_f64() / s3_gap.as_secs_f64()
        );
    }
}

/// Claim 2: PM with low-latency states keeps overheads comparable to base
/// DRM — management time fractions of the same (sub-percent) order, and
/// responsiveness that degrades only when latency grows to S5-class.
#[test]
fn claim2_overheads_comparable_to_base_drm() {
    let scenario = Scenario::datacenter_spiky(16, 96, 31);
    let horizon = SimDuration::from_hours(24);
    let base = SimulationBuilder::new(
        Experiment::new(scenario.clone())
            .policy(PowerPolicy::always_on())
            .control_interval(SimDuration::from_mins(1))
            .horizon(horizon),
    )
    .run_report()
    .expect("scenario runs");
    let pm = SimulationBuilder::new(
        Experiment::new(scenario)
            .policy(PowerPolicy::reactive_suspend())
            .control_interval(SimDuration::from_mins(1))
            .horizon(horizon),
    )
    .run_report()
    .expect("scenario runs");

    // Both spend well under 1% of host-time on management churn.
    assert!(base.migration_overhead_frac < 0.01);
    assert!(
        pm.migration_overhead_frac < 0.01,
        "PM migration time {:.3}%",
        pm.migration_overhead_frac * 100.0
    );
    assert!(
        pm.transition_overhead_frac < 0.005,
        "PM transition time {:.3}%",
        pm.transition_overhead_frac * 100.0
    );
    // And the performance cost stays near the DRM baseline.
    assert!(
        pm.unserved_ratio < 0.005,
        "PM unserved {:.4}%",
        pm.unserved_ratio * 100.0
    );
}

/// Claim 2b: responsiveness collapses as wake latency grows into the
/// S5-class regime — the crossover that motivates low-latency states.
#[test]
fn claim2b_wake_latency_crossover() {
    let latencies = [
        SimDuration::from_secs(12),
        SimDuration::from_secs(120),
        SimDuration::from_secs(600),
    ];
    let results = SweepBuilder::wake_latency(16, 96, &latencies, 17)
        .run()
        .expect("scenario runs");
    let fast = results[0].report().unserved_ratio;
    let slow = results[2].report().unserved_ratio;
    assert!(
        slow > 1.5 * fast,
        "10 min boots should hurt much more than 12 s resumes ({slow:.4} vs {fast:.4})"
    );
    // Monotone non-decreasing across the sweep.
    for pair in results.windows(2) {
        assert!(
            pair[1].report().unserved_ratio >= pair[0].report().unserved_ratio - 1e-9,
            "unserved not monotone in latency"
        );
    }
}

/// Claim 3: close to energy-proportional efficiency — the managed cluster
/// tracks the ideal proportional line far better than the always-on
/// baseline at every load level.
#[test]
fn claim3_close_to_energy_proportional() {
    // Proportionality is a fleet-scale property: the spare-host floor
    // amortizes as the cluster grows, so test at 16 hosts.
    let levels = [0.1, 0.3, 0.5, 0.7];
    let base = SweepBuilder::proportionality(16, 64, &levels, PowerPolicy::always_on(), 23)
        .run()
        .expect("scenario runs");
    let pm = SweepBuilder::proportionality(16, 64, &levels, PowerPolicy::reactive_suspend(), 23)
        .run()
        .expect("scenario runs");

    let peak = base.last().expect("non-empty").report().avg_power_w() / 0.93; // approx full-load power
    for (i, &level) in levels.iter().enumerate() {
        let base_gap = (base[i].report().avg_power_w() / peak - level).abs();
        let pm_gap = (pm[i].report().avg_power_w() / peak - level).abs();
        assert!(
            pm_gap < 0.6 * base_gap,
            "at load {level}: PM gap {pm_gap:.2} not well below baseline gap {base_gap:.2}"
        );
        // Within 15 points of the ideal line everywhere.
        assert!(pm_gap < 0.15, "at load {level}: PM gap {pm_gap:.2}");
    }
}
