//! Differential verification: generated scenarios run through the
//! execution paths the codebase promises are equivalent, asserting
//! bit-identical [`SimReport`]s, with the invariant catalog
//! ([`check_support::invariants`]) applied after every generated run.
//!
//! The equivalence pairs under test:
//!
//! * incremental vs `Scan` cluster accounting (PR 2's speedup);
//! * `Indexed` vs `Scan` consolidation planning (the bucket-index
//!   speedup), including failure-injected and sharded-thread variants
//!   — the work counters that measure *how* each mode searched are
//!   mode-variant by design and are compared structurally instead;
//! * the serial tick engine vs the sharded engine at 2, 4, and 8
//!   worker threads (the deterministic-sharding contract);
//! * `u16`-quantized vs dense f64 demand traces carrying the same
//!   decoded samples;
//! * pooled (`SweepBuilder::scale`) vs serial sweep execution;
//! * a JSONL trace sink attached vs no sink at all;
//! * the hierarchical span tracer enabled vs disabled (and with it the
//!   deterministic `work.*` op-counters, which ride in the report's
//!   metrics snapshot).
//!
//! Case counts default to 64 per property (`AGILEPM_CHECK_CASES`
//! raises them in CI), so each pair is exercised on at least 64
//! generated scenarios under plain `cargo test`.

use std::sync::atomic::{AtomicU64, Ordering};

use agilepm::cluster::AccountingMode;
use agilepm::core::{PlanMode, PowerPolicy};
use agilepm::sim::{Experiment, Scenario, SimReport, SimulationBuilder, SweepBuilder};
use agilepm::simcore::SimDuration;
use agilepm::workload::{DemandTrace, Fleet};
use check::gen;
use check_support::{
    check_energy_ordering, check_report, experiment_spec, failure_spec, scenario_spec,
};

/// Bit-identical comparison plus the serialized form, plus the invariant
/// catalog on both halves of the pair.
fn assert_equivalent(
    scenario: &Scenario,
    left: &SimReport,
    right: &SimReport,
    what: &str,
) -> Result<(), String> {
    check_report(scenario, left)?;
    check_report(scenario, right)?;
    check::prop_assert!(
        left == right,
        "{what}: reports differ (energy {} vs {} J, {} vs {} migrations)",
        left.energy_j,
        right.energy_j,
        left.migrations,
        right.migrations
    );
    check::prop_assert_eq!(
        left.to_json().to_string_compact(),
        right.to_json().to_string_compact(),
        "{what}: serialized reports differ"
    );
    Ok(())
}

#[test]
fn incremental_accounting_matches_scan_reference() {
    check::check(
        "incremental == Scan accounting",
        &experiment_spec(),
        |spec| {
            let scenario = spec.scenario.build();
            let run = |mode: AccountingMode| {
                check_support::run_experiment(spec.experiment().accounting(mode).record_events())
                    .map_err(|e| format!("{spec:?}: run failed: {e:?}"))
            };
            let incremental = run(AccountingMode::Incremental)?;
            let scan = run(AccountingMode::Scan)?;
            assert_equivalent(&scenario, &incremental, &scan, "incremental-vs-scan")
        },
    );
}

/// The `work.*` counters that measure *how* a planning mode searched —
/// scan charges per-host sweep work, indexed charges bucket walks plus
/// index maintenance — so they legitimately differ between modes.
/// Everything else in the report must match bit-for-bit.
const PLAN_MODE_VARIANT_COUNTERS: [&str; 3] = [
    "work.plan.candidates_scanned",
    "work.plan.hosts_rescored",
    "work.plan.fold_elements",
];

/// The `work.*` counters that must NOT depend on the planning mode: what
/// the planner *decided* (trials, rollbacks, migrations) rather than how
/// it searched.
const PLAN_MODE_INVARIANT_COUNTERS: [&str; 5] = [
    "work.plan.trials_attempted",
    "work.plan.trials_rolled_back",
    "work.plan.rollback_moves",
    "work.plan.undo_depth_max",
    "work.plan.migrations_planned",
];

/// Indexed-vs-scan equivalence: full invariant catalog on both, the
/// decision counters equal, and — after dropping the search-cost
/// counters — bit-identical reports including their serialized form.
fn assert_plan_modes_equivalent(
    scenario: &Scenario,
    indexed: &SimReport,
    scan: &SimReport,
    what: &str,
) -> Result<(), String> {
    check_report(scenario, indexed)?;
    check_report(scenario, scan)?;
    for name in PLAN_MODE_INVARIANT_COUNTERS {
        check::prop_assert_eq!(
            indexed.metrics.counter(name),
            scan.metrics.counter(name),
            "{what}: mode-invariant counter {name} differs"
        );
    }
    let strip = |report: &SimReport| {
        let mut r = report.clone();
        r.metrics.entries.retain(|e| {
            !PLAN_MODE_VARIANT_COUNTERS.contains(&e.name.as_str())
                && !e.name.starts_with("work.index.")
        });
        r
    };
    let indexed = strip(indexed);
    let scan = strip(scan);
    check::prop_assert!(
        indexed == scan,
        "{what}: reports differ beyond search-cost counters (energy {} vs {} J, {} vs {} migrations)",
        indexed.energy_j,
        scan.energy_j,
        indexed.migrations,
        scan.migrations
    );
    check::prop_assert_eq!(
        indexed.to_json().to_string_compact(),
        scan.to_json().to_string_compact(),
        "{what}: serialized reports differ"
    );
    Ok(())
}

#[test]
fn indexed_planning_matches_scan_reference() {
    check::check("Indexed == Scan planning", &experiment_spec(), |spec| {
        let scenario = spec.scenario.build();
        let run = |mode: PlanMode| {
            check_support::run_experiment(spec.experiment().plan_mode(mode).record_events())
                .map_err(|e| format!("{spec:?}: {} run failed: {e:?}", mode.label()))
        };
        let indexed = run(PlanMode::Indexed)?;
        let scan = run(PlanMode::Scan)?;
        // Non-vacuousness: under a power-managing policy the index must
        // actually have been maintained — otherwise this property would
        // silently compare scan against scan.
        if matches!(spec.policy, PowerPolicy::Reactive { .. }) {
            check::prop_assert!(
                indexed.metrics.counter("work.index.refreshes") > 0,
                "{spec:?}: indexed run never refreshed the index"
            );
            check::prop_assert_eq!(
                scan.metrics.counter("work.index.refreshes"),
                0,
                "{spec:?}: scan run maintained an index"
            );
        }
        assert_plan_modes_equivalent(&scenario, &indexed, &scan, "indexed-vs-scan")
    });
}

#[test]
fn indexed_planning_matches_scan_under_fault_injection() {
    // The index must stay coherent through quarantines, fail-safe
    // rounds, cancelled drains, and aborted migrations — all of which
    // perturb the hosts the planner may touch.
    let input = experiment_spec().zip(&failure_spec(499));
    check::check_cases(
        "Indexed == Scan planning under faults",
        32,
        &input,
        |(spec, failures)| {
            let scenario = spec.scenario.build();
            let run = |mode: PlanMode| {
                check_support::run_experiment(
                    spec.experiment()
                        .plan_mode(mode)
                        .failure_model(failures.build())
                        .record_events(),
                )
                .map_err(|e| format!("{spec:?}/{failures:?}: {} run failed: {e:?}", mode.label()))
            };
            let indexed = run(PlanMode::Indexed)?;
            let scan = run(PlanMode::Scan)?;
            assert_plan_modes_equivalent(&scenario, &indexed, &scan, "indexed-vs-scan-faults")
        },
    );
}

#[test]
fn indexed_planning_matches_scan_on_the_sharded_engine() {
    // Index maintenance lives on the control path, which stays serial
    // even under the sharded tick engine — but the sharded scan path
    // merges per-shard minima, so prove the index reproduces *that*
    // ordering too.
    check::check_cases(
        "Indexed == Scan planning, 4 worker threads",
        32,
        &experiment_spec(),
        |spec| {
            let scenario = spec.scenario.build();
            let run = |mode: PlanMode| {
                SimulationBuilder::new(spec.experiment().plan_mode(mode).record_events())
                    .threads(4)
                    .run_report()
                    .map_err(|e| format!("{spec:?}: {} run failed: {e:?}", mode.label()))
            };
            let indexed = run(PlanMode::Indexed)?;
            let scan = run(PlanMode::Scan)?;
            assert_plan_modes_equivalent(&scenario, &indexed, &scan, "indexed-vs-scan-sharded")
        },
    );
}

#[test]
fn sharded_engine_matches_serial() {
    // The deterministic-sharding contract: the same experiment at 2, 4,
    // and 8 worker threads must produce a report bit-identical to the
    // serial engine's — sharding may change wall-clock, never physics.
    check::check(
        "sharded == serial tick engine",
        &experiment_spec(),
        |spec| {
            let scenario = spec.scenario.build();
            let run = |threads: usize| {
                SimulationBuilder::new(spec.experiment().record_events())
                    .threads(threads)
                    .run_report()
                    .map_err(|e| format!("{spec:?}: {threads}-thread run failed: {e:?}"))
            };
            let serial = run(1)?;
            for threads in [2, 4, 8] {
                let sharded = run(threads)?;
                assert_equivalent(
                    &scenario,
                    &serial,
                    &sharded,
                    &format!("serial-vs-{threads}-threads"),
                )?;
            }
            Ok(())
        },
    );
}

#[test]
fn quantized_traces_match_dense_traces_with_the_same_samples() {
    // Quantization itself is lossy, so the fair comparison is a
    // quantized fleet against a dense fleet built from the *decoded*
    // samples — those two must simulate bit-identically.
    check::check(
        "quantized == dense-decoded traces",
        &experiment_spec(),
        |spec| {
            let base = spec.scenario.build();
            let decoded = |t: &DemandTrace| -> Vec<f64> {
                let q = t.clone().quantized();
                (0..q.len()).map(|k| q.sample(k)).collect()
            };
            let rebuild = |quantize: bool| {
                let traces: Vec<DemandTrace> = base
                    .fleet()
                    .traces()
                    .iter()
                    .map(|t| {
                        let dense = DemandTrace::from_samples(t.step(), decoded(t));
                        if quantize {
                            dense.quantized()
                        } else {
                            dense
                        }
                    })
                    .collect();
                let fleet = Fleet::from_parts(base.fleet().vm_specs().to_vec(), traces)
                    .with_lifetime_plan(base.fleet().lifetimes().clone());
                Scenario::new(
                    base.name().to_string(),
                    base.host_specs().to_vec(),
                    fleet,
                    base.demand_step(),
                    base.seed(),
                )
            };
            let run = |scenario: Scenario| {
                SimulationBuilder::new(
                    Experiment::new(scenario)
                        .policy(spec.policy)
                        .horizon(SimDuration::from_hours(spec.horizon_hours))
                        .control_interval(SimDuration::from_mins(spec.control_mins))
                        .record_events(),
                )
                .run_report()
                .map_err(|e| format!("{spec:?}: run failed: {e:?}"))
            };
            let quantized = run(rebuild(true))?;
            let dense = run(rebuild(false))?;
            assert_equivalent(&rebuild(false), &quantized, &dense, "quantized-vs-dense")
        },
    );
}

#[test]
fn pooled_sweep_matches_serial_loop() {
    // SweepBuilder::scale dispatches the (size, policy) grid through
    // the bounded worker pool; the result must equal running the same
    // grid serially, run by run.
    let sizes_and_seed = gen::usize_in(2..=4)
        .zip(&gen::usize_in(5..=7))
        .zip(&gen::u64_in(0..=999));
    check::check_cases(
        "pooled == serial sweeps",
        16,
        &sizes_and_seed,
        |&((small, large), seed)| {
            let host_counts = [small, large];
            let policies = [PowerPolicy::always_on(), PowerPolicy::reactive_suspend()];
            let pooled: Vec<(usize, PowerPolicy, SimReport)> =
                SweepBuilder::scale(&host_counts, &policies, seed)
                    .run()
                    .map_err(|e| format!("pooled sweep failed: {e:?}"))?
                    .into_iter()
                    .flat_map(|row| {
                        let hosts = row.value;
                        policies
                            .iter()
                            .copied()
                            .zip(row.reports)
                            .map(move |(policy, report)| (hosts, policy, report))
                    })
                    .collect();
            let mut serial = Vec::new();
            for &hosts in &host_counts {
                for &policy in &policies {
                    let scenario = Scenario::datacenter(hosts, hosts * 6, seed);
                    let report =
                        SimulationBuilder::new(Experiment::new(scenario.clone()).policy(policy))
                            .run_report()
                            .map_err(|e| format!("serial run failed: {e:?}"))?;
                    check_report(&scenario, &report)?;
                    serial.push((hosts, policy, report));
                }
            }
            check::prop_assert_eq!(pooled.len(), serial.len());
            for (p, s) in pooled.iter().zip(&serial) {
                check::prop_assert!(
                    p == s,
                    "pooled and serial disagree at {} hosts / {:?}",
                    s.0,
                    s.1
                );
            }
            Ok(())
        },
    );
}

#[test]
fn jsonl_sink_does_not_perturb_the_simulation() {
    static SINK_SERIAL: AtomicU64 = AtomicU64::new(0);
    check::check("JSONL sink == null sink", &experiment_spec(), |spec| {
        let scenario = spec.scenario.build();
        let path = std::env::temp_dir().join(format!(
            "agilepm-differential-{}-{}.jsonl",
            std::process::id(),
            SINK_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        let with_sink =
            check_support::run_experiment(spec.experiment().record_events().trace_path(&path))
                .map_err(|e| format!("{spec:?}: sink run failed: {e:?}"));
        let trace_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let _ = std::fs::remove_file(&path);
        let with_sink = with_sink?;
        let without = check_support::run_experiment(spec.experiment().record_events())
            .map_err(|e| format!("{spec:?}: null run failed: {e:?}"))?;
        check::prop_assert!(trace_len > 0, "sink produced an empty trace file");
        assert_equivalent(&scenario, &with_sink, &without, "sink-vs-null")
    });
}

#[test]
fn span_tracer_does_not_perturb_the_simulation() {
    // "Observe, never steer": a run with the hierarchical span tracer
    // enabled must produce a report bit-identical to one with the
    // tracer off. The report embeds the metrics snapshot — including
    // the deterministic `work.*` op-counters — so this also proves the
    // counters are tracer-independent, and the accounting/sharding
    // pairs above prove them mode- and thread-independent.
    check::check("tracer on == tracer off", &experiment_spec(), |spec| {
        let scenario = spec.scenario.build();
        let run = |profiling: bool| {
            SimulationBuilder::new(spec.experiment().record_events())
                .threads(check_support::sim_threads())
                .profiling(profiling)
                .run_report()
                .map_err(|e| format!("{spec:?}: profiling={profiling} run failed: {e:?}"))
        };
        let traced = run(true)?;
        let untraced = run(false)?;
        assert_equivalent(&scenario, &traced, &untraced, "tracer-vs-off")
    });
}

/// Proves the joint-ladder policy degenerates to PM-Suspend(S3) when the
/// SLO admits exactly the S3 rung: with a 12 s wake SLO every stock
/// profile resumes just in time (rack 12 s, blade 10 s), boot is minutes
/// away, and C6 — where present — is shallower than the deepest feasible
/// rung; with no prewake lookahead the warm pool is empty. The two runs
/// must then match decision-for-decision; only the policy label differs.
fn assert_ladder_degenerates(
    spec: &check_support::ExperimentSpec,
    ladder: &SimReport,
    suspend: &SimReport,
    what: &str,
) -> Result<(), String> {
    let scenario = spec.scenario.build();
    check_report(&scenario, ladder)?;
    check_report(&scenario, suspend)?;
    let normalize = |report: &SimReport| {
        let mut r = report.clone();
        r.policy = "normalized".to_string();
        r
    };
    let (ladder, suspend) = (normalize(ladder), normalize(suspend));
    check::prop_assert!(
        ladder == suspend,
        "{what}: {spec:?}: reports differ beyond the policy label (energy {} vs {} J, {} vs {} migrations)",
        ladder.energy_j,
        suspend.energy_j,
        ladder.migrations,
        suspend.migrations
    );
    check::prop_assert_eq!(
        ladder.to_json().to_string_compact(),
        suspend.to_json().to_string_compact(),
        "{what}: serialized reports differ"
    );
    Ok(())
}

#[test]
fn joint_ladder_at_s3_slo_degenerates_to_reactive_suspend() {
    // Plan mode follows AGILEPM_PLAN_MODE, so the CI matrix exercises
    // this degeneracy under both scan and indexed planning.
    check::check(
        "JointLadder(12s) == PM-Suspend(S3)",
        &experiment_spec(),
        |spec| {
            let run = |policy: PowerPolicy| {
                check_support::run_experiment(spec.experiment().policy(policy).record_events())
                    .map_err(|e| format!("{spec:?}: run failed: {e:?}"))
            };
            let ladder = run(PowerPolicy::joint_ladder(SimDuration::from_secs(12)))?;
            let suspend = run(PowerPolicy::reactive_suspend())?;
            assert_ladder_degenerates(spec, &ladder, &suspend, "ladder-vs-suspend")
        },
    );
}

#[test]
fn joint_ladder_degeneracy_holds_on_the_sharded_engine() {
    check::check_cases(
        "JointLadder(12s) == PM-Suspend(S3), 4 worker threads",
        32,
        &experiment_spec(),
        |spec| {
            let run = |policy: PowerPolicy| {
                SimulationBuilder::new(spec.experiment().policy(policy).record_events())
                    .threads(4)
                    .run_report()
                    .map_err(|e| format!("{spec:?}: run failed: {e:?}"))
            };
            let ladder = run(PowerPolicy::joint_ladder(SimDuration::from_secs(12)))?;
            let suspend = run(PowerPolicy::reactive_suspend())?;
            assert_ladder_degenerates(spec, &ladder, &suspend, "ladder-vs-suspend-sharded")
        },
    );
}

#[test]
fn policy_ladder_orders_energy_on_generated_diurnal_worlds() {
    // Oracle <= managed <= always-on, on worlds where consolidation has
    // something to harvest (the diurnal mix over a full day).
    let world = scenario_spec().map(|mut spec| {
        spec.workload = check_support::WorkloadKind::Diurnal;
        spec.hosts = spec.hosts.max(4);
        spec.vms_per_host = spec.vms_per_host.max(3);
        spec
    });
    check::check_cases("Oracle <= managed <= AlwaysOn", 8, &world, |spec| {
        let scenario = spec.build();
        let run = |p: PowerPolicy| {
            SimulationBuilder::new(
                Experiment::new(scenario.clone())
                    .policy(p)
                    .horizon(SimDuration::from_hours(24)),
            )
            .run_report()
            .map_err(|e| format!("{spec:?}: run failed: {e:?}"))
        };
        let oracle = run(PowerPolicy::oracle())?;
        let managed = run(PowerPolicy::reactive_suspend())?;
        let base = run(PowerPolicy::always_on())?;
        check_report(&scenario, &managed)?;
        check_report(&scenario, &base)?;
        check_energy_ordering(&oracle, &managed, &base, 0.002).map_err(|e| format!("{spec:?}: {e}"))
    });
}

#[test]
fn single_scheduler_plane_matches_direct_path() {
    // The distributed control plane at `schedulers = 1`, zero view
    // staleness, zero control latency is the global planner routed
    // through the placement store: every planned action must clear the
    // conflict check, and the report must come back bit-identical to
    // the direct path (same plan mode, whatever the CI leg set).
    check::check("schedulers=1 == direct path", &experiment_spec(), |spec| {
        let scenario = spec.scenario.build();
        let direct = check_support::run_experiment(spec.direct_experiment().record_events())
            .map_err(|e| format!("{spec:?}: direct run failed: {e:?}"))?;
        let plane = check_support::run_experiment(
            spec.direct_experiment()
                .schedulers(1)
                .view_staleness(0)
                .control_latency(0)
                .record_events(),
        )
        .map_err(|e| format!("{spec:?}: control-plane run failed: {e:?}"))?;
        // Non-vacuous: the plane leg really went through the store and
        // the store refused nothing.
        check::prop_assert_eq!(
            plane.metrics.counter("work.commit.rejected"),
            0,
            "{spec:?}: single-scheduler plane rejected a commit"
        );
        check::prop_assert_eq!(
            plane.metrics.counter("work.commit.planned"),
            plane.metrics.counter("work.commit.accepted"),
            "{spec:?}: single-scheduler plane lost planned actions"
        );
        assert_equivalent(&scenario, &plane, &direct, "plane-vs-direct")
    });
}

#[test]
fn single_scheduler_plane_is_staleness_invariant() {
    // View staleness only matters when partitioned views can diverge;
    // with one scheduler the merged view IS the fresh observation, so
    // any staleness bound must reproduce the direct path bit-exactly.
    let input = experiment_spec().zip(&gen::usize_in(1..=4));
    check::check_cases(
        "schedulers=1 is staleness-invariant",
        32,
        &input,
        |(spec, staleness)| {
            let scenario = spec.scenario.build();
            let direct = check_support::run_experiment(spec.direct_experiment().record_events())
                .map_err(|e| format!("{spec:?}: direct run failed: {e:?}"))?;
            let plane = check_support::run_experiment(
                spec.direct_experiment()
                    .schedulers(1)
                    .view_staleness(*staleness)
                    .record_events(),
            )
            .map_err(|e| format!("{spec:?}/staleness={staleness}: plane run failed: {e:?}"))?;
            assert_equivalent(&scenario, &plane, &direct, "plane-staleness-vs-direct")
        },
    );
}

#[test]
fn single_scheduler_plane_matches_direct_under_fault_injection() {
    // Fault injection perturbs the ground truth the store checks
    // against (failed resumes, aborted migrations, hung transitions);
    // a single-scheduler plane observing the same post-fault state must
    // still plan and commit identically to the direct path.
    let input = experiment_spec().zip(&failure_spec(499));
    check::check_cases(
        "schedulers=1 == direct under faults",
        32,
        &input,
        |(spec, failures)| {
            let scenario = spec.scenario.build();
            let run = |plane: bool| {
                let mut experiment = spec.direct_experiment();
                if plane {
                    experiment = experiment.schedulers(1);
                }
                check_support::run_experiment(
                    experiment.failure_model(failures.build()).record_events(),
                )
                .map_err(|e| format!("{spec:?}/{failures:?}: run failed: {e:?}"))
            };
            let plane = run(true)?;
            let direct = run(false)?;
            assert_equivalent(&scenario, &plane, &direct, "plane-vs-direct-faults")
        },
    );
}

#[test]
fn single_scheduler_plane_matches_direct_on_the_sharded_engine() {
    // The control plane sits on the serial control path; the sharded
    // tick engine underneath must not be observable through it.
    check::check_cases(
        "schedulers=1 == direct, 4 worker threads",
        32,
        &experiment_spec(),
        |spec| {
            let scenario = spec.scenario.build();
            let run = |plane: bool| {
                let mut experiment = spec.direct_experiment();
                if plane {
                    experiment = experiment.schedulers(1);
                }
                SimulationBuilder::new(experiment.record_events())
                    .threads(4)
                    .run_report()
                    .map_err(|e| format!("{spec:?}: run failed: {e:?}"))
            };
            let plane = run(true)?;
            let direct = run(false)?;
            assert_equivalent(&scenario, &plane, &direct, "plane-vs-direct-sharded")
        },
    );
}
