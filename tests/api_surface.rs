//! Public-API surface snapshot.
//!
//! Every workspace library's crate root is scanned for the items it
//! exports (`pub use`, `pub mod`, `pub fn`, `pub struct`, ...) and the
//! result is compared against the checked-in snapshot at
//! `tests/api_surface.snapshot`. An unreviewed export change — a leaked
//! type, a renamed re-export, a silently dropped module — fails CI with
//! a line diff; an intentional change is blessed by re-running with
//! `AGILEPM_BLESS=1` and committing the updated snapshot.
//!
//! The scan is deliberately shallow: it reads only the crate *root*
//! (`lib.rs`), where this workspace concentrates its re-export surface.
//! Items inside public modules are covered by `#![warn(missing_docs)]`
//! plus rustdoc in CI, not by this snapshot.

use std::fmt::Write as _;
use std::path::Path;

/// The library crate roots whose export surface is under snapshot.
const ROOTS: &[(&str, &str)] = &[
    ("agilepm", "src/lib.rs"),
    ("simcore", "crates/simcore/src/lib.rs"),
    ("power", "crates/power/src/lib.rs"),
    ("cluster", "crates/cluster/src/lib.rs"),
    ("workload", "crates/workload/src/lib.rs"),
    ("agile-core", "crates/core/src/lib.rs"),
    ("dcsim", "crates/sim/src/lib.rs"),
    ("obs", "crates/obs/src/lib.rs"),
    ("check", "crates/check/src/lib.rs"),
    ("check-support", "crates/check-support/src/lib.rs"),
];

/// Extracts the `pub` items of one crate-root source file, one
/// normalized line per item, in source order.
fn surface_of(source: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut pending: Option<String> = None;
    for raw in source.lines() {
        let line = raw.trim();
        if let Some(mut stmt) = pending.take() {
            // A multi-line `pub use` statement continues to the `;`.
            stmt.push(' ');
            stmt.push_str(line);
            if line.ends_with(';') {
                items.push(normalize(&stmt));
            } else {
                pending = Some(stmt);
            }
            continue;
        }
        if line.starts_with("pub use ") || line.starts_with("pub mod ") {
            if line.ends_with(';') || line.ends_with('{') && line.starts_with("pub mod ") {
                items.push(normalize(line.trim_end_matches('{').trim()));
            } else {
                pending = Some(line.to_string());
            }
        } else if [
            "pub fn ",
            "pub struct ",
            "pub enum ",
            "pub trait ",
            "pub type ",
            "pub const ",
            "pub static ",
        ]
        .iter()
        .any(|p| line.starts_with(p))
        {
            // Keep just the item kind and name — signatures may evolve
            // without changing the *surface*.
            let head: String = line
                .split(['(', '{', '=', '<', ';'])
                .next()
                .unwrap_or(line)
                .trim()
                .to_string();
            items.push(normalize(&head));
        }
    }
    assert!(
        pending.is_none(),
        "unterminated pub use statement in crate root"
    );
    items
}

/// Collapses interior whitespace so formatting churn never shows up as
/// a surface change.
fn normalize(stmt: &str) -> String {
    stmt.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn render_snapshot(root: &Path) -> String {
    let mut out = String::from(
        "# Public-API surface snapshot. Regenerate with:\n\
         #   AGILEPM_BLESS=1 cargo test --test api_surface\n\
         # Review the diff — every changed line is a public-API change.\n",
    );
    for (name, rel) in ROOTS {
        let source =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        writeln!(out, "\n[{name}] ({rel})").expect("string write");
        for item in surface_of(&source) {
            writeln!(out, "{item}").expect("string write");
        }
    }
    out
}

#[test]
fn exported_surface_matches_the_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let snapshot_path = root.join("tests/api_surface.snapshot");
    let actual = render_snapshot(root);

    if std::env::var_os("AGILEPM_BLESS").is_some() {
        std::fs::write(&snapshot_path, &actual).expect("write snapshot");
        return;
    }

    let expected = std::fs::read_to_string(&snapshot_path)
        .expect("tests/api_surface.snapshot missing — run with AGILEPM_BLESS=1 to create it");
    if actual == expected {
        return;
    }

    // A reviewable, line-level diff: everything removed from or added to
    // the snapshot, in file order.
    let mut diff = String::new();
    let actual_lines: Vec<&str> = actual.lines().collect();
    let expected_lines: Vec<&str> = expected.lines().collect();
    for line in &expected_lines {
        if !actual_lines.contains(line) {
            writeln!(diff, "- {line}").expect("string write");
        }
    }
    for line in &actual_lines {
        if !expected_lines.contains(line) {
            writeln!(diff, "+ {line}").expect("string write");
        }
    }
    panic!(
        "public-API surface changed (run AGILEPM_BLESS=1 cargo test --test api_surface \
         and commit the snapshot if intentional):\n{diff}"
    );
}
