//! Property-based integration tests: invariants that must hold for any
//! scenario the generator can produce.

use agilepm::cluster::{Cluster, HostSpec, Resources, VmSpec};
use agilepm::core::PowerPolicy;
use agilepm::power::{HostPowerProfile, PowerState, PowerStateMachine, TransitionKind};
use agilepm::sim::{Experiment, Scenario};
use agilepm::simcore::{SimDuration, SimTime};
use agilepm::workload::{presets, DemandProcess, Shape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any small scenario simulates without panicking, and the report's
    /// conservation laws hold.
    #[test]
    fn simulation_invariants(
        hosts in 2usize..10,
        vms_per_host in 1usize..8,
        seed in 0u64..1000,
        suspend in proptest::bool::ANY,
    ) {
        let policy = if suspend {
            PowerPolicy::reactive_suspend()
        } else {
            PowerPolicy::reactive_off()
        };
        let scenario = Scenario::datacenter(hosts, hosts * vms_per_host, seed);
        let r = Experiment::new(scenario)
            .policy(policy)
            .horizon(SimDuration::from_hours(4))
            .run()
            .expect("scenario runs");
        prop_assert!(r.energy_j > 0.0);
        prop_assert!(r.unserved_ratio >= 0.0 && r.unserved_ratio <= 1.0);
        prop_assert!(r.avg_hosts_on >= 0.0 && r.avg_hosts_on <= hosts as f64 + 1e-9);
        // Energy is bounded by every host at peak the whole time.
        let max_j = hosts as f64 * 315.0 * 4.0 * 3600.0;
        prop_assert!(r.energy_j <= max_j * 1.01, "energy {} above physical cap {}", r.energy_j, max_j);
        // ...and at least every host parked the whole time.
        let min_j = hosts as f64 * 4.5 * 4.0 * 3600.0 * 0.9;
        prop_assert!(r.energy_j >= min_j, "energy {} below park floor {}", r.energy_j, min_j);
    }

    /// Any legal sequence of power transitions keeps the residency,
    /// energy, and state bookkeeping consistent.
    #[test]
    fn power_machine_random_walk(steps in 1usize..40, seed in 0u64..1000) {
        let mut rng = agilepm::simcore::RngStream::new(seed);
        let mut m = PowerStateMachine::new(HostPowerProfile::prototype_rack(), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now = now + SimDuration::from_secs(rng.below(600) + 1);
            let kind = match m.state() {
                PowerState::On => {
                    if rng.chance(0.5) { TransitionKind::Suspend } else { TransitionKind::Shutdown }
                }
                PowerState::Suspended => TransitionKind::Resume,
                PowerState::Off => TransitionKind::Boot,
                _ => unreachable!("walk only visits stable states"),
            };
            let done = m.begin(kind, now).expect("legal transition");
            m.complete(done).expect("scheduled completion");
            now = done;
        }
        m.sync(now);
        // Residency sums to elapsed time exactly.
        let total = m.residency().total();
        prop_assert_eq!(total, now.since(SimTime::ZERO));
        // Energy equals the per-state breakdown.
        let by_state: f64 = PowerState::ALL.iter().map(|&s| m.meter().state_j(s)).sum();
        prop_assert!((by_state - m.meter().total_j()).abs() < 1e-6);
        // Transition counts match the walk length.
        prop_assert_eq!(m.total_transitions(), steps as u64);
    }

    /// Cluster placement bookkeeping stays consistent under random
    /// place/migrate/power sequences.
    #[test]
    fn cluster_random_operations(ops in 1usize..60, seed in 0u64..1000) {
        let mut rng = agilepm::simcore::RngStream::new(seed);
        let hosts = vec![
            HostSpec::new(Resources::new(16.0, 64.0), HostPowerProfile::prototype_rack());
            4
        ];
        let vms = vec![VmSpec::new(Resources::new(2.0, 4.0)); 12];
        let mut cluster = Cluster::new(hosts, vms, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut pending_migrations: Vec<(agilepm::cluster::VmId, SimTime)> = Vec::new();
        let mut pending_power: Vec<(agilepm::cluster::HostId, SimTime)> = Vec::new();

        for _ in 0..ops {
            now = now + SimDuration::from_secs(rng.below(120) + 1);
            // Complete anything due.
            pending_migrations.retain(|&(vm, at)| {
                if at <= now {
                    cluster.complete_migration(vm, at).expect("scheduled completion");
                    false
                } else { true }
            });
            pending_power.retain(|&(h, at)| {
                if at <= now {
                    cluster.complete_power_transition(h, at).expect("scheduled completion");
                    false
                } else { true }
            });

            let vm = agilepm::cluster::VmId(rng.below(12) as u32);
            let host = agilepm::cluster::HostId(rng.below(4) as u32);
            match rng.below(4) {
                0 => { let _ = cluster.place(vm, host); }
                1 => {
                    if let Ok(done) = cluster.begin_migration(vm, host, now) {
                        pending_migrations.push((vm, done));
                    }
                }
                2 => {
                    if let Ok(done) = cluster.begin_power_transition(host, TransitionKind::Suspend, now) {
                        pending_power.push((host, done));
                    }
                }
                _ => {
                    if let Ok(done) = cluster.begin_power_transition(host, TransitionKind::Resume, now) {
                        pending_power.push((host, done));
                    }
                }
            }
            prop_assert!(cluster.placement().check_invariants());
            // Memory never overcommitted on any host.
            for h in 0..4u32 {
                let id = agilepm::cluster::HostId(h);
                prop_assert!(cluster.mem_committed_gb(id) <= 64.0 + 1e-9);
            }
        }
    }

    /// Demand traces are always within [0, 1] and deterministic.
    #[test]
    fn demand_process_bounds(
        base in 0.0f64..0.7,
        amplitude in 0.0f64..0.3,
        rho in 0.0f64..0.99,
        sigma in 0.0f64..0.4,
        seed in 0u64..1000,
    ) {
        let p = DemandProcess::new(Shape::diurnal(base, amplitude)).with_noise(rho, sigma);
        let t1 = p.generate(
            SimDuration::from_hours(6),
            SimDuration::from_mins(5),
            &mut agilepm::simcore::RngStream::new(seed),
        );
        let t2 = p.generate(
            SimDuration::from_hours(6),
            SimDuration::from_mins(5),
            &mut agilepm::simcore::RngStream::new(seed),
        );
        prop_assert_eq!(&t1, &t2);
        for &s in t1.samples() {
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    /// Fleet generation conserves counts and footprints for any mix size.
    #[test]
    fn fleet_generation_counts(count in 1usize..200, seed in 0u64..1000) {
        let fleet = presets::enterprise_diurnal().generate(
            count,
            SimDuration::from_hours(2),
            SimDuration::from_mins(10),
            seed,
        );
        prop_assert_eq!(fleet.len(), count);
        prop_assert_eq!(fleet.traces().len(), count);
        prop_assert!(fleet.total_mem_gb() >= count as f64 * 4.0);
        prop_assert!(fleet.total_cpu_cap_cores() >= count as f64 * 2.0);
    }
}
