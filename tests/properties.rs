//! Randomized integration tests, on the [`check`] framework: invariants
//! that must hold for any scenario the generators can produce. Failures
//! shrink to minimal counterexamples and replay from the printed seed.

use agilepm::cluster::{Cluster, HostId, HostSpec, Resources, VmId, VmSpec};
use agilepm::core::PowerPolicy;
use agilepm::power::{HostPowerProfile, PowerState, PowerStateMachine, TransitionKind};
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::{RngStream, SimDuration, SimTime};
use agilepm::workload::{presets, DemandProcess, Shape};
use check::gen::{boolean, f64_in, u64_in, usize_in};
use check::{prop_assert, prop_assert_eq};
use check_support::check_report;

/// Any small scenario simulates without panicking, the report's
/// conservation laws hold, and the full invariant catalog passes.
#[test]
fn simulation_invariants() {
    let input = usize_in(2..=9)
        .zip(&usize_in(1..=7))
        .zip(&u64_in(0..=999))
        .zip(&boolean());
    check::check_cases(
        "simulation invariants",
        16,
        &input,
        |&(((hosts, vms_per_host), seed), suspend)| {
            let policy = if suspend {
                PowerPolicy::reactive_suspend()
            } else {
                PowerPolicy::reactive_off()
            };
            let scenario = Scenario::datacenter(hosts, hosts * vms_per_host, seed);
            let r = SimulationBuilder::new(
                Experiment::new(scenario.clone())
                    .policy(policy)
                    .horizon(SimDuration::from_hours(4)),
            )
            .run_report()
            .map_err(|e| format!("scenario failed to run: {e:?}"))?;
            check_report(&scenario, &r)?;
            prop_assert!(r.energy_j > 0.0, "zero energy");
            // Energy is bounded by every host at peak the whole time...
            let max_j = hosts as f64 * 315.0 * 4.0 * 3600.0;
            prop_assert!(
                r.energy_j <= max_j * 1.01,
                "energy {} above physical cap {max_j}",
                r.energy_j
            );
            // ...and at least every host parked the whole time.
            let min_j = hosts as f64 * 4.5 * 4.0 * 3600.0 * 0.9;
            prop_assert!(
                r.energy_j >= min_j,
                "energy {} below park floor {min_j}",
                r.energy_j
            );
            Ok(())
        },
    );
}

/// Any legal sequence of power transitions keeps the residency, energy,
/// and state bookkeeping consistent.
#[test]
fn power_machine_random_walk() {
    let input = usize_in(1..=40).zip(&u64_in(0..=999));
    check::check("power machine random walk", &input, |&(steps, seed)| {
        let mut rng = RngStream::new(seed);
        let mut m = PowerStateMachine::new(HostPowerProfile::prototype_rack(), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now += SimDuration::from_secs(rng.below(600) + 1);
            let kind = match m.state() {
                PowerState::On => {
                    if rng.chance(0.5) {
                        TransitionKind::Suspend
                    } else {
                        TransitionKind::Shutdown
                    }
                }
                PowerState::Suspended => TransitionKind::Resume,
                PowerState::Off => TransitionKind::Boot,
                _ => unreachable!("walk only visits stable states"),
            };
            let done = m.begin(kind, now).expect("legal transition");
            m.complete(done).expect("scheduled completion");
            now = done;
        }
        m.sync(now);
        // Residency sums to elapsed time exactly.
        prop_assert_eq!(m.residency().total(), now.since(SimTime::ZERO));
        // Energy equals the per-state breakdown.
        let by_state: f64 = PowerState::ALL.iter().map(|&s| m.meter().state_j(s)).sum();
        prop_assert!((by_state - m.meter().total_j()).abs() < 1e-6);
        // Transition counts match the walk length.
        prop_assert_eq!(m.total_transitions(), steps as u64);
        Ok(())
    });
}

/// Cluster placement bookkeeping stays consistent under random
/// place/migrate/power sequences.
#[test]
fn cluster_random_operations() {
    let input = usize_in(1..=60).zip(&u64_in(0..=999));
    check::check("cluster random operations", &input, |&(ops, seed)| {
        let mut rng = RngStream::new(seed);
        let hosts = vec![
            HostSpec::new(
                Resources::new(16.0, 64.0),
                HostPowerProfile::prototype_rack()
            );
            4
        ];
        let vms = vec![VmSpec::new(Resources::new(2.0, 4.0)); 12];
        let mut cluster = Cluster::new(hosts, vms, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut pending_migrations: Vec<(VmId, SimTime)> = Vec::new();
        let mut pending_power: Vec<(HostId, SimTime)> = Vec::new();

        for _ in 0..ops {
            now += SimDuration::from_secs(rng.below(120) + 1);
            // Complete anything due.
            pending_migrations.retain(|&(vm, at)| {
                if at <= now {
                    cluster
                        .complete_migration(vm, at)
                        .expect("scheduled completion");
                    false
                } else {
                    true
                }
            });
            pending_power.retain(|&(h, at)| {
                if at <= now {
                    cluster
                        .complete_power_transition(h, at)
                        .expect("scheduled completion");
                    false
                } else {
                    true
                }
            });

            let vm = VmId(rng.below(12) as u32);
            let host = HostId(rng.below(4) as u32);
            match rng.below(4) {
                0 => {
                    let _ = cluster.place(vm, host);
                }
                1 => {
                    if let Ok(done) = cluster.begin_migration(vm, host, now) {
                        pending_migrations.push((vm, done));
                    }
                }
                2 => {
                    if let Ok(done) =
                        cluster.begin_power_transition(host, TransitionKind::Suspend, now)
                    {
                        pending_power.push((host, done));
                    }
                }
                _ => {
                    if let Ok(done) =
                        cluster.begin_power_transition(host, TransitionKind::Resume, now)
                    {
                        pending_power.push((host, done));
                    }
                }
            }
            prop_assert!(cluster.placement().check_invariants(), "placement broken");
            // Memory never overcommitted on any host.
            for h in 0..4u32 {
                prop_assert!(
                    cluster.mem_committed_gb(HostId(h)) <= 64.0 + 1e-9,
                    "host {h} memory overcommitted"
                );
            }
        }
        Ok(())
    });
}

/// Demand traces are always within [0, 1] and deterministic.
#[test]
fn demand_process_bounds() {
    let input = f64_in(0.0, 0.7)
        .zip(&f64_in(0.0, 0.3))
        .zip(&f64_in(0.0, 0.99))
        .zip(&f64_in(0.0, 0.4))
        .zip(&u64_in(0..=999));
    check::check(
        "demand process bounds",
        &input,
        |&((((base, amplitude), rho), sigma), seed)| {
            let p = DemandProcess::new(Shape::diurnal(base, amplitude)).with_noise(rho, sigma);
            let t1 = p.generate(
                SimDuration::from_hours(6),
                SimDuration::from_mins(5),
                &mut RngStream::new(seed),
            );
            let t2 = p.generate(
                SimDuration::from_hours(6),
                SimDuration::from_mins(5),
                &mut RngStream::new(seed),
            );
            prop_assert_eq!(&t1, &t2);
            for &s in t1.samples() {
                prop_assert!((0.0..=1.0).contains(&s), "sample {s} out of range");
            }
            Ok(())
        },
    );
}

/// Fleet generation conserves counts and footprints for any mix size.
#[test]
fn fleet_generation_counts() {
    let input = usize_in(1..=200).zip(&u64_in(0..=999));
    check::check_cases("fleet generation counts", 30, &input, |&(count, seed)| {
        let fleet = presets::enterprise_diurnal().generate(
            count,
            SimDuration::from_hours(2),
            SimDuration::from_mins(10),
            seed,
        );
        prop_assert_eq!(fleet.len(), count);
        prop_assert_eq!(fleet.traces().len(), count);
        prop_assert!(fleet.total_mem_gb() >= count as f64 * 4.0);
        prop_assert!(fleet.total_cpu_cap_cores() >= count as f64 * 2.0);
        Ok(())
    });
}

/// Every calibrated preset must present a monotonic power-state ladder:
/// deeper rungs rest at lower power and wake slower. (The theoretical
/// `ideal_proportional` machine is exempt — its rungs all rest at 0 W —
/// as are the F7 resume-latency overrides, which perturb wake latency
/// on purpose.)
#[test]
fn calibrated_profiles_have_monotonic_ladders() {
    for profile in [
        HostPowerProfile::prototype_rack(),
        HostPowerProfile::prototype_blade(),
        HostPowerProfile::prototype_rack_sublinear(),
        HostPowerProfile::prototype_rack_superlinear(),
        HostPowerProfile::prototype_rack_ladder(),
        HostPowerProfile::prototype_blade_ladder(),
        HostPowerProfile::legacy_rack(),
    ] {
        check_support::check_ladder_monotonic(&profile)
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
    }
}

/// N concurrent schedulers over the conflict-checked placement store:
/// every generated world runs deterministically (two runs are
/// bit-identical), the commit ledger balances exactly (the catalog's
/// `check_commit_ledger`, applied through `check_report`), and the
/// recorded event log shows no VM placed twice.
#[test]
fn distributed_control_plane_invariants() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let planned_total = AtomicU64::new(0);
    let input = check_support::experiment_spec()
        .zip(&check_support::scheduler_count())
        .zip(&usize_in(0..=3))
        .zip(&usize_in(0..=2));
    check::check_cases(
        "distributed control plane invariants",
        24,
        &input,
        |(((spec, schedulers), staleness), latency)| {
            let schedulers = (*schedulers).min(spec.scenario.hosts);
            let scenario = spec.scenario.build();
            let run = || {
                check_support::run_experiment(
                    spec.direct_experiment()
                        .schedulers(schedulers)
                        .view_staleness(*staleness)
                        .control_latency(*latency)
                        .record_events(),
                )
                .map_err(|e| format!("{spec:?}/n={schedulers}/s={staleness}/d={latency}: {e:?}"))
            };
            let a = run()?;
            let b = run()?;
            prop_assert!(
                a == b,
                "control plane not deterministic at n={schedulers} s={staleness} d={latency}"
            );
            check_report(&scenario, &a)?;
            planned_total.fetch_add(a.metrics.counter("work.commit.planned"), Ordering::Relaxed);
            Ok(())
        },
    );
    // Non-vacuousness across the whole batch: the store saw real plans.
    assert!(
        planned_total.load(Ordering::Relaxed) > 0,
        "no generated world ever planned an action through the store"
    );
}

/// A commit the store refuses is not lost work: the action's subject
/// stays where it was, the owning scheduler re-observes it, and the plan
/// stream keeps flowing. On a spiky world driven hard enough to produce
/// real rejections, the run must still execute migrations, finish with a
/// balanced ledger, and leave no parked host holding VMs.
#[test]
fn rejected_commits_are_eventually_replanned() {
    use agilepm::sim::SimOutput;
    let scenario = Scenario::datacenter_spiky(8, 48, 22);
    let out: SimOutput = SimulationBuilder::new(
        Experiment::new(scenario.clone())
            .policy(PowerPolicy::reactive_suspend())
            .control_interval(SimDuration::from_mins(1))
            .schedulers(4)
            .view_staleness(2)
            .control_latency(1)
            .record_events(),
    )
    .capture_cluster(true)
    .build()
    .and_then(|sim| sim.run())
    .expect("distributed run completes");
    let r = &out.report;
    check_report(&scenario, r).unwrap();
    let c = |name: &str| r.metrics.counter(name);
    assert!(
        c("work.commit.rejected") > 0,
        "stale 4-scheduler views on a spiky day should produce at least one conflict"
    );
    assert!(
        c("work.migrations.executed") > 0,
        "rejections must not starve the migration pipeline"
    );
    // Plans kept flowing after the first rejection: commits continued
    // to land and the fleet still parked hosts for real savings.
    assert!(c("work.commit.accepted") > 0, "no commit ever landed");
    assert!(r.power_downs > 0, "rejections starved power management");
    let cluster = out.cluster.expect("capture_cluster returns the cluster");
    check_support::check_cluster(&cluster).unwrap();
}
