//! Randomized integration tests: invariants that must hold for any
//! scenario the generator can produce.
//!
//! Inputs are drawn from the workspace's own deterministic [`RngStream`]
//! (seeded per test), so every run checks the same cases — failures
//! reproduce exactly without a shrinker.

use agilepm::cluster::{Cluster, HostId, HostSpec, Resources, VmId, VmSpec};
use agilepm::core::PowerPolicy;
use agilepm::power::{HostPowerProfile, PowerState, PowerStateMachine, TransitionKind};
use agilepm::sim::{Experiment, Scenario};
use agilepm::simcore::{RngStream, SimDuration, SimTime};
use agilepm::workload::{presets, DemandProcess, Shape};

/// Any small scenario simulates without panicking, and the report's
/// conservation laws hold.
#[test]
fn simulation_invariants() {
    let mut gen = RngStream::new(0xA11CE);
    for case in 0..16 {
        let hosts = 2 + gen.below(8) as usize;
        let vms_per_host = 1 + gen.below(7) as usize;
        let seed = gen.below(1000);
        let policy = if gen.chance(0.5) {
            PowerPolicy::reactive_suspend()
        } else {
            PowerPolicy::reactive_off()
        };
        let scenario = Scenario::datacenter(hosts, hosts * vms_per_host, seed);
        let r = Experiment::new(scenario)
            .policy(policy)
            .horizon(SimDuration::from_hours(4))
            .run()
            .expect("scenario runs");
        let ctx = format!("case {case}: {hosts} hosts x {vms_per_host} VMs, seed {seed}");
        assert!(r.energy_j > 0.0, "{ctx}");
        assert!((0.0..=1.0).contains(&r.unserved_ratio), "{ctx}");
        assert!(
            r.avg_hosts_on >= 0.0 && r.avg_hosts_on <= hosts as f64 + 1e-9,
            "{ctx}"
        );
        // Energy is bounded by every host at peak the whole time.
        let max_j = hosts as f64 * 315.0 * 4.0 * 3600.0;
        assert!(
            r.energy_j <= max_j * 1.01,
            "{ctx}: energy {} above physical cap {max_j}",
            r.energy_j
        );
        // ...and at least every host parked the whole time.
        let min_j = hosts as f64 * 4.5 * 4.0 * 3600.0 * 0.9;
        assert!(
            r.energy_j >= min_j,
            "{ctx}: energy {} below park floor {min_j}",
            r.energy_j
        );
    }
}

/// Any legal sequence of power transitions keeps the residency, energy,
/// and state bookkeeping consistent.
#[test]
fn power_machine_random_walk() {
    let mut gen = RngStream::new(0xB0B);
    for case in 0..50 {
        let steps = 1 + gen.below(39) as usize;
        let seed = gen.below(1000);
        let mut rng = RngStream::new(seed);
        let mut m = PowerStateMachine::new(HostPowerProfile::prototype_rack(), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now += SimDuration::from_secs(rng.below(600) + 1);
            let kind = match m.state() {
                PowerState::On => {
                    if rng.chance(0.5) {
                        TransitionKind::Suspend
                    } else {
                        TransitionKind::Shutdown
                    }
                }
                PowerState::Suspended => TransitionKind::Resume,
                PowerState::Off => TransitionKind::Boot,
                _ => unreachable!("walk only visits stable states"),
            };
            let done = m.begin(kind, now).expect("legal transition");
            m.complete(done).expect("scheduled completion");
            now = done;
        }
        m.sync(now);
        let ctx = format!("case {case}: {steps} steps, seed {seed}");
        // Residency sums to elapsed time exactly.
        assert_eq!(m.residency().total(), now.since(SimTime::ZERO), "{ctx}");
        // Energy equals the per-state breakdown.
        let by_state: f64 = PowerState::ALL.iter().map(|&s| m.meter().state_j(s)).sum();
        assert!((by_state - m.meter().total_j()).abs() < 1e-6, "{ctx}");
        // Transition counts match the walk length.
        assert_eq!(m.total_transitions(), steps as u64, "{ctx}");
    }
}

/// Cluster placement bookkeeping stays consistent under random
/// place/migrate/power sequences.
#[test]
fn cluster_random_operations() {
    let mut gen = RngStream::new(0xC1A5);
    for case in 0..50 {
        let ops = 1 + gen.below(59) as usize;
        let seed = gen.below(1000);
        let mut rng = RngStream::new(seed);
        let hosts = vec![
            HostSpec::new(
                Resources::new(16.0, 64.0),
                HostPowerProfile::prototype_rack()
            );
            4
        ];
        let vms = vec![VmSpec::new(Resources::new(2.0, 4.0)); 12];
        let mut cluster = Cluster::new(hosts, vms, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut pending_migrations: Vec<(VmId, SimTime)> = Vec::new();
        let mut pending_power: Vec<(HostId, SimTime)> = Vec::new();

        for _ in 0..ops {
            now += SimDuration::from_secs(rng.below(120) + 1);
            // Complete anything due.
            pending_migrations.retain(|&(vm, at)| {
                if at <= now {
                    cluster
                        .complete_migration(vm, at)
                        .expect("scheduled completion");
                    false
                } else {
                    true
                }
            });
            pending_power.retain(|&(h, at)| {
                if at <= now {
                    cluster
                        .complete_power_transition(h, at)
                        .expect("scheduled completion");
                    false
                } else {
                    true
                }
            });

            let vm = VmId(rng.below(12) as u32);
            let host = HostId(rng.below(4) as u32);
            match rng.below(4) {
                0 => {
                    let _ = cluster.place(vm, host);
                }
                1 => {
                    if let Ok(done) = cluster.begin_migration(vm, host, now) {
                        pending_migrations.push((vm, done));
                    }
                }
                2 => {
                    if let Ok(done) =
                        cluster.begin_power_transition(host, TransitionKind::Suspend, now)
                    {
                        pending_power.push((host, done));
                    }
                }
                _ => {
                    if let Ok(done) =
                        cluster.begin_power_transition(host, TransitionKind::Resume, now)
                    {
                        pending_power.push((host, done));
                    }
                }
            }
            let ctx = format!("case {case}: seed {seed}");
            assert!(cluster.placement().check_invariants(), "{ctx}");
            // Memory never overcommitted on any host.
            for h in 0..4u32 {
                assert!(cluster.mem_committed_gb(HostId(h)) <= 64.0 + 1e-9, "{ctx}");
            }
        }
    }
}

/// Demand traces are always within [0, 1] and deterministic.
#[test]
fn demand_process_bounds() {
    let mut gen = RngStream::new(0xD00D);
    for _ in 0..50 {
        let base = gen.uniform(0.0, 0.7);
        let amplitude = gen.uniform(0.0, 0.3);
        let rho = gen.uniform(0.0, 0.99);
        let sigma = gen.uniform(0.0, 0.4);
        let seed = gen.below(1000);
        let p = DemandProcess::new(Shape::diurnal(base, amplitude)).with_noise(rho, sigma);
        let t1 = p.generate(
            SimDuration::from_hours(6),
            SimDuration::from_mins(5),
            &mut RngStream::new(seed),
        );
        let t2 = p.generate(
            SimDuration::from_hours(6),
            SimDuration::from_mins(5),
            &mut RngStream::new(seed),
        );
        assert_eq!(&t1, &t2);
        for &s in t1.samples() {
            assert!(
                (0.0..=1.0).contains(&s),
                "sample {s} out of range (base {base}, amp {amplitude}, rho {rho}, sigma {sigma})"
            );
        }
    }
}

/// Fleet generation conserves counts and footprints for any mix size.
#[test]
fn fleet_generation_counts() {
    let mut gen = RngStream::new(0xF1EE7);
    for _ in 0..30 {
        let count = 1 + gen.below(199) as usize;
        let seed = gen.below(1000);
        let fleet = presets::enterprise_diurnal().generate(
            count,
            SimDuration::from_hours(2),
            SimDuration::from_mins(10),
            seed,
        );
        assert_eq!(fleet.len(), count);
        assert_eq!(fleet.traces().len(), count);
        assert!(fleet.total_mem_gb() >= count as f64 * 4.0);
        assert!(fleet.total_cpu_cap_cores() >= count as f64 * 2.0);
    }
}
