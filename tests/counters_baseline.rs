//! Exact-value gate on the deterministic `work.*` op-counters.
//!
//! A pinned 256-host scenario runs once per planning mode and every
//! `work.*` counter in each metrics snapshot must match
//! `ci/counters_baseline.json` exactly — no tolerance. The counters are
//! pure functions of the scenario seed (no clocks, no thread
//! interleaving), so any drift is a real behavior change in the planning
//! hot paths — an extra scan, a lost rollback, a double count — and must
//! be reviewed, not absorbed. An intentional change is blessed by
//! re-running with `AGILEPM_BLESS=1` and committing the updated
//! baseline.
//!
//! The scan-mode run pins the reference planner; the indexed-mode run
//! pins both the decision counters (which must equal scan's — the
//! differential suite proves that on generated worlds, this pins it on
//! the big one) and the `work.index.*` maintenance counters, whose
//! drift would mean the index is being refreshed or re-bucketed on a
//! different schedule. The distributed run pins the placement store's
//! commit arbitration under 4 schedulers with stale views and delayed
//! commits.

use std::path::Path;

use agilepm::core::{PlanMode, PowerPolicy};
use agilepm::obs::{Json, MetricValue};
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::SimDuration;

/// The pinned scenario: the perf-smoke's mid size, the paper seed, a
/// full simulated day under the default managed policy.
const HOSTS: usize = 256;
const SEED: u64 = 2013;

fn work_counters_for(
    scenario: Scenario,
    policy: PowerPolicy,
    mode: PlanMode,
) -> Vec<(String, u64)> {
    let report = SimulationBuilder::new(
        Experiment::new(scenario)
            .policy(policy)
            .horizon(SimDuration::from_hours(24))
            .plan_mode(mode),
    )
    .run_report()
    .expect("pinned run succeeds");
    report
        .metrics
        .entries
        .iter()
        .filter_map(|e| match &e.value {
            MetricValue::Counter(v) if e.name.starts_with("work.") => Some((e.name.clone(), *v)),
            _ => None,
        })
        .collect()
}

fn work_counters(mode: PlanMode) -> Vec<(String, u64)> {
    work_counters_for(
        Scenario::datacenter(HOSTS, HOSTS * 6, SEED),
        PowerPolicy::reactive_suspend(),
        mode,
    )
}

/// The joint-ladder run pins the rung-selection path: the same pinned
/// size and seed on the C6→S3→S5 ladder scenario under a 12 s wake SLO.
fn ladder_counters() -> Vec<(String, u64)> {
    work_counters_for(
        Scenario::datacenter_ladder(HOSTS, HOSTS * 6, SEED),
        PowerPolicy::joint_ladder(SimDuration::from_secs(12)),
        PlanMode::Scan,
    )
}

/// The distributed run pins the control plane's commit arbitration: the
/// pinned scenario planned by 4 schedulers over 1-round-stale partial
/// views with a 1-round commit latency (indexed planning), so the
/// `work.commit.*` ledger — accepts, per-reason rejections, unowned
/// drops, horizon expiries — is gated exactly alongside the plan
/// counters.
fn distributed_counters() -> Vec<(String, u64)> {
    let report = SimulationBuilder::new(
        Experiment::new(Scenario::datacenter(HOSTS, HOSTS * 6, SEED))
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(24))
            .plan_mode(PlanMode::Indexed)
            .schedulers(4)
            .view_staleness(1)
            .control_latency(1),
    )
    .run_report()
    .expect("pinned distributed run succeeds");
    report
        .metrics
        .entries
        .iter()
        .filter_map(|e| match &e.value {
            MetricValue::Counter(v) if e.name.starts_with("work.") => Some((e.name.clone(), *v)),
            _ => None,
        })
        .collect()
}

fn render_counters(out: &mut String, key: &str, counters: &[(String, u64)], last: bool) {
    out.push_str(&format!("  \"{key}\": {{\n"));
    for (i, (name, value)) in counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {value}{}\n",
            if i + 1 < counters.len() { "," } else { "" }
        ));
    }
    out.push_str(if last { "  }\n" } else { "  },\n" });
}

fn render_baseline(
    scan: &[(String, u64)],
    indexed: &[(String, u64)],
    ladder: &[(String, u64)],
    distributed: &[(String, u64)],
) -> String {
    let mut out = format!(
        "{{\n  \"scenario\": \"datacenter-{HOSTS}\",\n  \"seed\": {SEED},\n  \
         \"policy\": \"pm-suspend\",\n"
    );
    render_counters(&mut out, "counters", scan, false);
    render_counters(&mut out, "counters_indexed", indexed, false);
    render_counters(&mut out, "counters_ladder", ladder, false);
    render_counters(&mut out, "counters_distributed", distributed, true);
    out.push_str("}\n");
    out
}

fn assert_counters_match(blessed: &[(String, Json)], counters: &[(String, u64)], key: &str) {
    assert_eq!(
        blessed.len(),
        counters.len(),
        "`{key}` counter set changed: baseline {:?} vs run {:?}",
        blessed.iter().map(|(k, _)| k).collect::<Vec<_>>(),
        counters.iter().map(|(k, _)| k).collect::<Vec<_>>()
    );
    for (name, value) in counters {
        let want = blessed
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_i64())
            .unwrap_or_else(|| panic!("baseline `{key}` is missing `{name}`"));
        assert_eq!(
            *value as i64, want,
            "`{key}.{name}` drifted from the blessed baseline — the planning \
             hot path changed; review, then re-bless with AGILEPM_BLESS=1"
        );
    }
}

#[test]
fn work_counters_match_the_blessed_baseline_exactly() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("ci/counters_baseline.json");
    let scan = work_counters(PlanMode::Scan);
    let indexed = work_counters(PlanMode::Indexed);
    let ladder = ladder_counters();
    let distributed = distributed_counters();
    assert!(!scan.is_empty(), "pinned run produced no work.* counters");
    assert!(
        indexed
            .iter()
            .any(|(n, v)| n == "work.index.refreshes" && *v > 0),
        "pinned indexed run never maintained the index"
    );
    assert!(
        !ladder.is_empty(),
        "pinned ladder run produced no work.* counters"
    );
    assert!(
        distributed
            .iter()
            .any(|(n, v)| n == "work.commit.rejected" && *v > 0),
        "pinned distributed run never hit a commit conflict"
    );

    if std::env::var_os("AGILEPM_BLESS").is_some() {
        std::fs::write(
            &path,
            render_baseline(&scan, &indexed, &ladder, &distributed),
        )
        .expect("write baseline");
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\nbless the baseline with: AGILEPM_BLESS=1 cargo test --test counters_baseline",
            path.display()
        )
    });
    let json = Json::parse(&text).expect("baseline is valid JSON");
    for (key, counters) in [
        ("counters", &scan),
        ("counters_indexed", &indexed),
        ("counters_ladder", &ladder),
        ("counters_distributed", &distributed),
    ] {
        let blessed = json
            .get(key)
            .and_then(Json::as_object)
            .unwrap_or_else(|| panic!("baseline has no `{key}` object"));
        assert_counters_match(blessed, counters, key);
    }
}
