//! Exact-value gate on the deterministic `work.*` op-counters.
//!
//! A pinned 256-host scenario runs once and every `work.*` counter in
//! its metrics snapshot must match `ci/counters_baseline.json` exactly —
//! no tolerance. The counters are pure functions of the scenario seed
//! (no clocks, no thread interleaving), so any drift is a real behavior
//! change in the planning hot paths — an extra scan, a lost rollback, a
//! double count — and must be reviewed, not absorbed. An intentional
//! change is blessed by re-running with `AGILEPM_BLESS=1` and
//! committing the updated baseline.

use std::path::Path;

use agilepm::core::PowerPolicy;
use agilepm::obs::{Json, MetricValue};
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::SimDuration;

/// The pinned scenario: the perf-smoke's mid size, the paper seed, a
/// full simulated day under the default managed policy.
const HOSTS: usize = 256;
const SEED: u64 = 2013;

fn work_counters() -> Vec<(String, u64)> {
    let report = SimulationBuilder::new(
        Experiment::new(Scenario::datacenter(HOSTS, HOSTS * 6, SEED))
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(24)),
    )
    .run_report()
    .expect("pinned run succeeds");
    report
        .metrics
        .entries
        .iter()
        .filter_map(|e| match &e.value {
            MetricValue::Counter(v) if e.name.starts_with("work.") => Some((e.name.clone(), *v)),
            _ => None,
        })
        .collect()
}

fn render_baseline(counters: &[(String, u64)]) -> String {
    let mut out = format!(
        "{{\n  \"scenario\": \"datacenter-{HOSTS}\",\n  \"seed\": {SEED},\n  \
         \"policy\": \"pm-suspend\",\n  \"counters\": {{\n"
    );
    for (i, (name, value)) in counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {value}{}\n",
            if i + 1 < counters.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[test]
fn work_counters_match_the_blessed_baseline_exactly() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("ci/counters_baseline.json");
    let counters = work_counters();
    assert!(
        !counters.is_empty(),
        "pinned run produced no work.* counters"
    );

    if std::env::var_os("AGILEPM_BLESS").is_some() {
        std::fs::write(&path, render_baseline(&counters)).expect("write baseline");
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\nbless the baseline with: AGILEPM_BLESS=1 cargo test --test counters_baseline",
            path.display()
        )
    });
    let json = Json::parse(&text).expect("baseline is valid JSON");
    let blessed = json
        .get("counters")
        .and_then(Json::as_object)
        .expect("baseline has a `counters` object");
    assert_eq!(
        blessed.len(),
        counters.len(),
        "counter set changed: baseline {:?} vs run {:?}",
        blessed.iter().map(|(k, _)| k).collect::<Vec<_>>(),
        counters.iter().map(|(k, _)| k).collect::<Vec<_>>()
    );
    for (name, value) in &counters {
        let want = blessed
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_i64())
            .unwrap_or_else(|| panic!("baseline is missing `{name}`"));
        assert_eq!(
            *value as i64, want,
            "`{name}` drifted from the blessed baseline — the planning \
             hot path changed; review, then re-bless with AGILEPM_BLESS=1"
        );
    }
}
