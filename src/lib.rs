//! # agilepm — facade crate
//!
//! Rust reproduction of *“Agile, efficient virtualization power management
//! with low-latency server power states”* (Isci et al., ISCA 2013).
//!
//! This crate re-exports the whole workspace behind one dependency so
//! examples, integration tests, and downstream users can write
//! `use agilepm::...` without tracking the internal crate layout:
//!
//! * [`simcore`] — discrete-event engine, clock, RNG, statistics.
//! * [`power`] — server power states, transition tables, power curves,
//!   energy accounting, break-even analysis.
//! * [`cluster`] — hosts, VMs, placement, live migration.
//! * [`workload`] — demand models, traces, fleet generation.
//! * [`core`] (crate `agile-core`) — the paper's contribution: the
//!   power-aware virtualization manager and its policy suite.
//! * [`sim`] (crate `dcsim`) — the end-to-end datacenter simulator,
//!   metrics, and experiment runners.
//! * [`obs`] — the telemetry substrate: streaming trace sinks, the
//!   metrics registry, wall-clock phase profiling, and the
//!   dependency-free JSON used throughout.
//!
//! # Quickstart
//!
//! An [`sim::Experiment`] describes *what* to simulate; the
//! [`sim::SimulationBuilder`] decides *how* to run it (worker threads,
//! profiling, cluster capture) and validates the whole configuration
//! before anything executes:
//!
//! ```
//! use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
//! use agilepm::core::PowerPolicy;
//! use agilepm::simcore::SimDuration;
//!
//! let scenario = Scenario::small_test(42);
//! let report = SimulationBuilder::new(
//!     Experiment::new(scenario)
//!         .policy(PowerPolicy::reactive_suspend())
//!         .horizon(SimDuration::from_hours(2)),
//! )
//! .run_report()
//! .expect("simulation runs");
//! assert!(report.energy_kwh() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use agile_core as core;
pub use cluster;
pub use dcsim as sim;
pub use obs;
pub use power;
pub use simcore;
pub use workload;

/// One-line import for the common workflow:
/// `use agilepm::prelude::*;`
pub mod prelude {
    pub use agile_core::{ManagerConfig, PowerPolicy, PredictorConfig, VirtManager};
    pub use cluster::{HostId, HostSpec, Resources, ServiceClass, VmId, VmSpec};
    pub use dcsim::{
        replicate, Experiment, FailureModel, Scenario, SimOutput, SimReport, Simulation,
        SimulationBuilder,
    };
    pub use power::{HostPowerProfile, PowerCurve, PowerState};
    pub use simcore::{RngStream, SimDuration, SimTime};
    pub use workload::{presets, DemandProcess, FleetSpec, Shape, VmClass};
}
