//! Quickstart: simulate one day of a small power-managed cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use agilepm::core::PowerPolicy;
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::SimDuration;

fn main() {
    // A reproducible world: 4 prototype hosts, 16 enterprise VMs, 24 h of
    // diurnal demand. Same seed -> same run, bit for bit.
    let scenario = Scenario::small_test(42);

    // The paper's proposal: DRM load balancing plus consolidation with
    // low-latency suspend-to-RAM parking.
    let report = SimulationBuilder::new(
        Experiment::new(scenario.clone())
            .policy(PowerPolicy::reactive_suspend())
            .horizon(SimDuration::from_hours(24)),
    )
    .run_report()
    .expect("scenario is well-formed");

    // And the always-on baseline for comparison.
    let baseline = SimulationBuilder::new(
        Experiment::new(scenario)
            .policy(PowerPolicy::always_on())
            .horizon(SimDuration::from_hours(24)),
    )
    .run_report()
    .expect("scenario is well-formed");

    println!(
        "cluster        : {} hosts / {} VMs",
        report.num_hosts, report.num_vms
    );
    println!(
        "baseline energy: {:.1} kWh (always on)",
        baseline.energy_kwh()
    );
    println!(
        "managed energy : {:.1} kWh ({})",
        report.energy_kwh(),
        report.policy
    );
    println!(
        "savings        : {:.1}%",
        report.savings_vs(&baseline) * 100.0
    );
    println!(
        "avg hosts on   : {:.1} of {}",
        report.avg_hosts_on, report.num_hosts
    );
    println!("unserved demand: {:.4}%", report.unserved_ratio * 100.0);
    println!(
        "management     : {} migrations, {} power actions",
        report.migrations,
        report.power_ups + report.power_downs
    );
}
