//! Flash-crowd responsiveness: what host wake-up latency costs when the
//! whole fleet surges at once.
//!
//! A consolidated cluster idles at 12 % of capacity; at t = 90 min every
//! VM jumps to 85 % simultaneously. We compare an S3-class resume (12 s)
//! against an S5-class boot (5 min) and print the unserved-demand
//! timeline around the spike.
//!
//! ```sh
//! cargo run --release --example demand_spike
//! ```

use agilepm::sim::SweepBuilder;
use agilepm::simcore::{SimDuration, SimTime};

fn main() {
    let latencies = [SimDuration::from_secs(12), SimDuration::from_secs(300)];
    let results = SweepBuilder::wake_latency(16, 96, &latencies, 11)
        .run()
        .expect("scenario is well-formed");

    for row in &results {
        let report = row.report();
        println!(
            "wake latency {:>4}: unserved {:.4}%, violation ticks {:.1}%, {} wakes",
            row.value,
            report.unserved_ratio * 100.0,
            report.violation_fraction * 100.0,
            report.power_ups,
        );
    }

    // Zoom into the 20 minutes around the spike.
    println!("\nUnserved demand (cores) around the spike at t=90min:");
    println!("{:>7}  {:>10}  {:>10}", "t(min)", "resume12s", "boot5m");
    let start = SimTime::ZERO + SimDuration::from_mins(85);
    for k in 0..24 {
        let t = start + SimDuration::from_mins(1) * k;
        let fast = results[0]
            .report()
            .unserved_series
            .value_at(t)
            .unwrap_or(0.0);
        let slow = results[1]
            .report()
            .unserved_series
            .value_at(t)
            .unwrap_or(0.0);
        println!(
            "{:>7.0}  {:>10.1}  {:>10.1}",
            t.as_secs_f64() / 60.0,
            fast,
            slow
        );
    }
}
