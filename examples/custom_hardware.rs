//! Modeling your own server hardware.
//!
//! The library's presets encode the paper's prototypes, but every piece is
//! a public API: define a custom power profile from your own
//! measurements, ask the break-even analyzer when parking pays off, and
//! run the full management stack on it.
//!
//! ```sh
//! cargo run --release --example custom_hardware
//! ```

use agilepm::cluster::{HostSpec, Resources};
use agilepm::core::PowerPolicy;
use agilepm::power::breakeven::{break_even_gap, LowPowerMode};
use agilepm::power::{HostPowerProfile, PowerCurve, TransitionSpec, TransitionTable};
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::SimDuration;
use agilepm::workload::presets;

fn main() {
    // A hypothetical next-gen server measured in your lab: SPECpower-style
    // sub-linear curve, deep 4 W suspend reachable in 3 s, resumed in 5 s.
    let profile = HostPowerProfile::new(
        "nextgen-1U",
        PowerCurve::piecewise(vec![
            (0.0, 90.0),
            (0.2, 140.0),
            (0.5, 190.0),
            (0.8, 240.0),
            (1.0, 280.0),
        ]),
        4.0,
        2.0,
        TransitionTable::with_suspend(
            TransitionSpec::new(SimDuration::from_secs(3), 70.0),
            TransitionSpec::new(SimDuration::from_secs(5), 110.0),
            TransitionSpec::new(SimDuration::from_secs(60), 100.0),
            TransitionSpec::new(SimDuration::from_secs(120), 180.0),
        ),
    );

    println!("profile: {profile}");
    let s3_gap = break_even_gap(&profile, LowPowerMode::Suspend).expect("supports suspend");
    let s5_gap = break_even_gap(&profile, LowPowerMode::Off).expect("always supported");
    println!("suspend pays off after an idle gap of {s3_gap}");
    println!("full off pays off after an idle gap of {s5_gap}");

    // Run the full stack on a fleet of these machines.
    let hosts = vec![HostSpec::new(Resources::new(24.0, 192.0), profile); 12];
    let fleet = presets::enterprise_diurnal().generate(
        72,
        SimDuration::from_hours(24),
        SimDuration::from_mins(5),
        3,
    );
    let scenario = Scenario::new("nextgen-fleet", hosts, fleet, SimDuration::from_mins(5), 3);

    let base =
        SimulationBuilder::new(Experiment::new(scenario.clone()).policy(PowerPolicy::always_on()))
            .run_report()
            .expect("scenario is well-formed");
    let pm =
        SimulationBuilder::new(Experiment::new(scenario).policy(PowerPolicy::reactive_suspend()))
            .run_report()
            .expect("scenario is well-formed");

    println!(
        "\n12x nextgen-1U, 72 VMs, 24 h diurnal: {:.1} kWh always-on -> {:.1} kWh managed ({:.1}% saved, {:.4}% unserved)",
        base.energy_kwh(),
        pm.energy_kwh(),
        pm.savings_vs(&base) * 100.0,
        pm.unserved_ratio * 100.0,
    );
}
