//! Energy proportionality: cluster power as a function of offered load.
//!
//! The paper's efficiency claim is that virtualization power management
//! with low-latency states delivers *close to energy-proportional* power.
//! This example sweeps a steady load from 10 % to 90 % and prints the
//! normalized power curve for the always-on baseline, the suspend-based
//! manager, and the analytic oracle, next to the ideal proportional line.
//!
//! ```sh
//! cargo run --release --example energy_proportionality
//! ```

use agilepm::core::PowerPolicy;
use agilepm::sim::SweepBuilder;

fn main() {
    let levels = [0.1, 0.3, 0.5, 0.7, 0.9];
    let hosts = 16;
    let vms = 64;
    let seed = 5;

    let run = |policy: PowerPolicy| {
        SweepBuilder::proportionality(hosts, vms, &levels, policy, seed)
            .run()
            .expect("scenario is well-formed")
    };
    let base = run(PowerPolicy::always_on());
    let pm = run(PowerPolicy::reactive_suspend());
    let oracle = run(PowerPolicy::oracle());

    let peak = base.last().expect("non-empty sweep").report().avg_power_w();
    println!(
        "{:>5}  {:>9}  {:>12}  {:>7}  {:>6}",
        "load", "AlwaysOn", "PM-Suspend", "Oracle", "ideal"
    );
    for (i, &level) in levels.iter().enumerate() {
        println!(
            "{:>4.0}%  {:>9.2}  {:>12.2}  {:>7.2}  {:>6.2}",
            level * 100.0,
            base[i].report().avg_power_w() / peak,
            pm[i].report().avg_power_w() / peak,
            oracle[i].report().avg_power_w() / peak,
            level,
        );
    }
    println!("\n(power normalized to the always-on cluster at 90% load)");
}
