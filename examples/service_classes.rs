//! SLA tiering: interactive vs batch service classes.
//!
//! Hosts serve interactive demand before batch, and the manager prefers
//! batch VMs when it must migrate. This example builds a two-tier fleet
//! by hand and shows where the consolidation cost lands.
//!
//! ```sh
//! cargo run --release --example service_classes
//! ```

use agilepm::cluster::Resources;
use agilepm::core::PowerPolicy;
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::SimDuration;
use agilepm::workload::{DemandProcess, FleetSpec, Shape, VmClass};

fn main() {
    // A hand-built two-tier mix: 60 % latency-sensitive frontends, 40 %
    // batch workers running hot all night.
    let spec = FleetSpec::new(vec![
        VmClass::new(
            "frontend",
            Resources::new(2.0, 4.0),
            DemandProcess::new(Shape::diurnal(0.45, 0.3)).with_noise(0.9, 0.08),
            0.6,
        ),
        VmClass::new(
            "worker",
            Resources::new(4.0, 8.0),
            DemandProcess::new(Shape::Square {
                low: 0.1,
                high: 0.8,
                period: SimDuration::from_hours(24),
                duty: 0.4,
                phase: 0.5,
            })
            .with_noise(0.8, 0.05),
            0.4,
        )
        .batch(),
    ]);
    let horizon = SimDuration::from_hours(24);
    let fleet = spec.generate(96, horizon, SimDuration::from_mins(5), 11);
    let hosts = Scenario::uniform_hosts(16, agilepm::power::HostPowerProfile::prototype_rack());
    let scenario = Scenario::new("two-tier", hosts, fleet, SimDuration::from_mins(5), 11);

    for policy in [PowerPolicy::always_on(), PowerPolicy::reactive_suspend()] {
        let r = SimulationBuilder::new(
            Experiment::new(scenario.clone())
                .policy(policy)
                .control_interval(SimDuration::from_mins(1))
                .horizon(horizon),
        )
        .run_report()
        .expect("scenario is well-formed");
        println!(
            "{:<15} energy {:>6.1} kWh | unserved total {:.4}%  interactive {:.4}%  batch {:.4}% | lat {:.2}x",
            r.policy,
            r.energy_kwh(),
            r.unserved_ratio * 100.0,
            r.unserved_interactive_ratio * 100.0,
            r.unserved_batch_ratio * 100.0,
            r.avg_latency_factor,
        );
    }
    println!("\nInteractive demand is served first on saturated hosts, and the");
    println!("manager migrates batch VMs first — so whatever shortfall the");
    println!("packed fleet has lands on the tier built to absorb it.");
}
