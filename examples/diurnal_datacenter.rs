//! A 32-host datacenter over one diurnal day, all four policies compared
//! — the workload the paper's introduction motivates: enterprise VMs with
//! a strong day/night swing that an agile power manager can exploit.
//!
//! ```sh
//! cargo run --release --example diurnal_datacenter
//! ```

use agilepm::core::PowerPolicy;
use agilepm::sim::report::{policy_comparison, series_table};
use agilepm::sim::{Experiment, Scenario, SimulationBuilder};
use agilepm::simcore::{SimDuration, SimTime};

fn main() {
    let scenario = Scenario::datacenter(32, 192, 7);
    let policies = [
        PowerPolicy::always_on(),
        PowerPolicy::reactive_off(),
        PowerPolicy::reactive_suspend(),
        PowerPolicy::oracle(),
    ];

    let reports: Vec<_> = policies
        .into_iter()
        .map(|p| {
            SimulationBuilder::new(Experiment::new(scenario.clone()).policy(p))
                .run_report()
                .expect("scenario is well-formed")
        })
        .collect();

    println!("== Policy comparison, {} ==", scenario.name());
    println!("{}", policy_comparison(&reports.iter().collect::<Vec<_>>()));

    // How many hosts each policy keeps powered on over the day — the
    // visual core of the paper's consolidation argument.
    let labels: Vec<&str> = reports.iter().map(|r| r.policy.as_str()).collect();
    let series: Vec<_> = reports.iter().map(|r| &r.hosts_on_series).collect();
    println!("== Powered-on hosts over the day ==");
    println!(
        "{}",
        series_table(
            &labels,
            &series,
            SimDuration::from_hours(2),
            SimTime::ZERO + SimDuration::from_hours(24),
        )
    );
}
